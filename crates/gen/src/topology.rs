//! Random DAG topology generators.
//!
//! Four families commonly used in real-time schedulability experiments:
//!
//! * [`Topology::Layered`] — vertices arranged in layers, edges only between
//!   consecutive layers (the classic "synchronous parallel" shape);
//! * [`Topology::ErdosRenyi`] — `G(n, p)` restricted to forward edges over a
//!   random vertex order;
//! * [`Topology::NestedForkJoin`] — recursively nested fork-join blocks;
//! * [`Topology::SeriesParallel`] — random series/parallel composition.
//!
//! All generators take an explicit RNG so experiments are reproducible from
//! a seed, and all produced graphs are valid non-empty DAGs with positive
//! WCETs.

use fedsched_dag::graph::{Dag, DagBuilder, VertexId};
use fedsched_dag::time::Duration;
use rand::Rng;

/// Inclusive integer range used by the generator configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Lower bound (inclusive).
    pub min: u32,
    /// Upper bound (inclusive).
    pub max: u32,
}

impl Span {
    /// Creates the span `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `min == 0`.
    #[must_use]
    pub fn new(min: u32, max: u32) -> Span {
        assert!(min <= max, "span minimum exceeds maximum");
        assert!(min > 0, "span must be positive");
        Span { min, max }
    }

    /// Uniform sample from the span.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.gen_range(self.min..=self.max)
    }
}

/// The DAG topology family to draw from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// Layered DAG: `layers` layers of `width` vertices; each vertex gets an
    /// edge from a random vertex of the previous layer, plus extra
    /// consecutive-layer edges with probability `edge_probability`.
    Layered {
        /// Number of layers.
        layers: Span,
        /// Vertices per layer.
        width: Span,
        /// Probability of each extra consecutive-layer edge.
        edge_probability: f64,
    },
    /// Forward-edge Erdős–Rényi: each pair `(i, j)` with `i < j` is an edge
    /// with probability `edge_probability`.
    ErdosRenyi {
        /// Number of vertices.
        vertices: Span,
        /// Edge probability.
        edge_probability: f64,
    },
    /// Recursively nested fork-join: a source forks into `branching`
    /// sub-blocks which join, nested to `depth` levels.
    NestedForkJoin {
        /// Nesting depth (0 = a single vertex).
        depth: Span,
        /// Fan-out at each fork.
        branching: Span,
    },
    /// Random series-parallel composition of `operations` binary
    /// compositions over single-vertex blocks.
    SeriesParallel {
        /// Number of composition steps.
        operations: Span,
    },
}

/// Per-vertex WCET distribution: uniform over `[min, max]` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcetRange {
    /// Minimum WCET (≥ 1).
    pub min: u64,
    /// Maximum WCET.
    pub max: u64,
}

impl WcetRange {
    /// Creates the WCET range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    #[must_use]
    pub fn new(min: u64, max: u64) -> WcetRange {
        assert!(min >= 1, "WCETs must be positive");
        assert!(min <= max, "WCET minimum exceeds maximum");
        WcetRange { min, max }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        Duration::new(rng.gen_range(self.min..=self.max))
    }
}

impl Default for WcetRange {
    fn default() -> Self {
        WcetRange { min: 1, max: 100 }
    }
}

impl Topology {
    /// Generates one random DAG from this family with WCETs drawn from
    /// `wcet`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, wcet: WcetRange) -> Dag {
        match *self {
            Topology::Layered {
                layers,
                width,
                edge_probability,
            } => layered(rng, layers, width, edge_probability, wcet),
            Topology::ErdosRenyi {
                vertices,
                edge_probability,
            } => erdos_renyi(rng, vertices, edge_probability, wcet),
            Topology::NestedForkJoin { depth, branching } => {
                nested_fork_join(rng, depth, branching, wcet)
            }
            Topology::SeriesParallel { operations } => series_parallel(rng, operations, wcet),
        }
    }
}

fn layered<R: Rng + ?Sized>(
    rng: &mut R,
    layers: Span,
    width: Span,
    p: f64,
    wcet: WcetRange,
) -> Dag {
    let n_layers = layers.sample(rng) as usize;
    let mut b = DagBuilder::new();
    let mut prev: Vec<VertexId> = Vec::new();
    for layer in 0..n_layers {
        let w = width.sample(rng) as usize;
        let current: Vec<VertexId> = (0..w).map(|_| b.add_vertex(wcet.sample(rng))).collect();
        if layer > 0 {
            for &v in &current {
                // Guarantee connectivity to the previous layer.
                let anchor = prev[rng.gen_range(0..prev.len())];
                b.add_edge(anchor, v).expect("fresh forward edge");
                for &u in &prev {
                    if u != anchor && rng.gen_bool(p) {
                        b.add_edge(u, v).expect("fresh forward edge");
                    }
                }
            }
        }
        prev = current;
    }
    b.build().expect("layered edges are forward-only")
}

fn erdos_renyi<R: Rng + ?Sized>(rng: &mut R, vertices: Span, p: f64, wcet: WcetRange) -> Dag {
    let n = vertices.sample(rng) as usize;
    let mut b = DagBuilder::new();
    let ids: Vec<VertexId> = (0..n).map(|_| b.add_vertex(wcet.sample(rng))).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(ids[i], ids[j]).expect("fresh forward edge");
            }
        }
    }
    b.build().expect("forward edges are acyclic")
}

fn nested_fork_join<R: Rng + ?Sized>(
    rng: &mut R,
    depth: Span,
    branching: Span,
    wcet: WcetRange,
) -> Dag {
    let d = depth.sample(rng);
    let mut b = DagBuilder::new();
    build_fj(rng, &mut b, d, branching, wcet);
    b.build().expect("fork-join blocks are acyclic")
}

/// Builds one fork-join block, returning its (entry, exit) vertices.
fn build_fj<R: Rng + ?Sized>(
    rng: &mut R,
    b: &mut DagBuilder,
    depth: u32,
    branching: Span,
    wcet: WcetRange,
) -> (VertexId, VertexId) {
    if depth == 0 {
        let v = b.add_vertex(wcet.sample(rng));
        return (v, v);
    }
    let fork = b.add_vertex(wcet.sample(rng));
    let join = b.add_vertex(wcet.sample(rng));
    let branches = branching.sample(rng);
    for _ in 0..branches {
        let (entry, exit) = build_fj(rng, b, depth - 1, branching, wcet);
        b.add_edge(fork, entry).expect("fresh edge into branch");
        b.add_edge(exit, join).expect("fresh edge out of branch");
    }
    (fork, join)
}

fn series_parallel<R: Rng + ?Sized>(rng: &mut R, operations: Span, wcet: WcetRange) -> Dag {
    // Maintain a forest of blocks as (entry, exit) pairs; repeatedly combine
    // two random blocks in series or parallel (with synthetic fork/join
    // vertices), ending with one block.
    let ops = operations.sample(rng) as usize;
    let mut b = DagBuilder::new();
    let mut blocks: Vec<(VertexId, VertexId)> = (0..=ops)
        .map(|_| {
            let v = b.add_vertex(wcet.sample(rng));
            (v, v)
        })
        .collect();
    while blocks.len() > 1 {
        let i = rng.gen_range(0..blocks.len());
        let (e1, x1) = blocks.swap_remove(i);
        let j = rng.gen_range(0..blocks.len());
        let (e2, x2) = blocks.swap_remove(j);
        if rng.gen_bool(0.5) {
            // Series: block1 then block2.
            b.add_edge(x1, e2).expect("fresh series edge");
            blocks.push((e1, x2));
        } else {
            // Parallel: new fork and join around both blocks.
            let fork = b.add_vertex(wcet.sample(rng));
            let join = b.add_vertex(wcet.sample(rng));
            b.add_edge(fork, e1).expect("fresh fork edge");
            b.add_edge(fork, e2).expect("fresh fork edge");
            b.add_edge(x1, join).expect("fresh join edge");
            b.add_edge(x2, join).expect("fresh join edge");
            blocks.push((fork, join));
        }
    }
    b.build().expect("series-parallel composition is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn all_topologies() -> Vec<Topology> {
        vec![
            Topology::Layered {
                layers: Span::new(2, 5),
                width: Span::new(1, 6),
                edge_probability: 0.3,
            },
            Topology::ErdosRenyi {
                vertices: Span::new(3, 20),
                edge_probability: 0.25,
            },
            Topology::NestedForkJoin {
                depth: Span::new(1, 3),
                branching: Span::new(2, 3),
            },
            Topology::SeriesParallel {
                operations: Span::new(2, 12),
            },
        ]
    }

    #[test]
    fn all_families_produce_valid_nonempty_dags() {
        let wcet = WcetRange::new(1, 10);
        for topo in all_topologies() {
            let mut r = rng(42);
            for _ in 0..50 {
                let dag = topo.generate(&mut r, wcet);
                assert!(dag.vertex_count() > 0, "{topo:?}");
                assert!(dag.longest_chain().length <= dag.volume());
                for v in dag.vertices() {
                    let w = dag.wcet(v).ticks();
                    assert!((1..=10).contains(&w));
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let wcet = WcetRange::default();
        for topo in all_topologies() {
            let a = topo.generate(&mut rng(7), wcet);
            let b = topo.generate(&mut rng(7), wcet);
            assert_eq!(a, b, "{topo:?}");
            let c = topo.generate(&mut rng(8), wcet);
            // Extremely unlikely to coincide; tolerate but don't require.
            let _ = c;
        }
    }

    #[test]
    fn layered_has_connected_layers() {
        let topo = Topology::Layered {
            layers: Span::new(4, 4),
            width: Span::new(3, 3),
            edge_probability: 0.0,
        };
        let dag = topo.generate(&mut rng(1), WcetRange::new(1, 1));
        assert_eq!(dag.vertex_count(), 12);
        // With p = 0 each non-first-layer vertex has exactly one predecessor.
        let sources = dag.sources();
        assert_eq!(sources.len(), 3);
        for v in dag.vertices() {
            if !sources.contains(&v) {
                assert_eq!(dag.in_degree(v), 1);
            }
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = Topology::ErdosRenyi {
            vertices: Span::new(8, 8),
            edge_probability: 0.0,
        }
        .generate(&mut rng(3), WcetRange::new(2, 2));
        assert_eq!(empty.edge_count(), 0);
        let full = Topology::ErdosRenyi {
            vertices: Span::new(8, 8),
            edge_probability: 1.0,
        }
        .generate(&mut rng(3), WcetRange::new(2, 2));
        assert_eq!(full.edge_count(), 8 * 7 / 2);
        // The complete order forces a full chain.
        assert_eq!(full.longest_chain().length, full.volume());
    }

    #[test]
    fn fork_join_structure() {
        let topo = Topology::NestedForkJoin {
            depth: Span::new(1, 1),
            branching: Span::new(3, 3),
        };
        let dag = topo.generate(&mut rng(5), WcetRange::new(1, 1));
        // fork + join + 3 leaves.
        assert_eq!(dag.vertex_count(), 5);
        assert_eq!(dag.sources().len(), 1);
        assert_eq!(dag.sinks().len(), 1);
        assert_eq!(dag.longest_chain().vertices.len(), 3);
    }

    #[test]
    fn series_parallel_single_source_is_possible() {
        let topo = Topology::SeriesParallel {
            operations: Span::new(10, 10),
        };
        let dag = topo.generate(&mut rng(11), WcetRange::new(1, 4));
        assert!(dag.vertex_count() >= 11);
        assert!(dag.edge_count() >= 10);
    }

    #[test]
    #[should_panic(expected = "span minimum exceeds maximum")]
    fn bad_span_panics() {
        let _ = Span::new(5, 2);
    }

    #[test]
    #[should_panic(expected = "WCETs must be positive")]
    fn zero_wcet_panics() {
        let _ = WcetRange::new(0, 3);
    }
}
