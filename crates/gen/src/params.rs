//! Task-parameter generation: utilizations, periods and deadlines.
//!
//! The standard recipe of RT schedulability experiments:
//!
//! * per-task utilizations by **UUniFast** (Bini & Buttazzo, 2005) for an
//!   unbiased uniform sample over the simplex `Σ uᵢ = U`, with the
//!   **discard** variant when a per-task cap applies;
//! * **log-uniform periods**, so task periods spread over orders of
//!   magnitude as in real systems;
//! * **constrained deadlines** drawn from `[len, T]`, parameterised by a
//!   fraction range so experiments can sweep deadline tightness.

use rand::Rng;

/// Draws `n` utilizations summing to `total` with UUniFast.
///
/// The result is uniformly distributed over the standard simplex scaled to
/// `total`. Individual values can exceed 1 when `total > 1` — that is how
/// high-utilization (and with tight deadlines, high-density) tasks arise.
///
/// # Panics
///
/// Panics if `n == 0` or `total <= 0`.
pub fn uunifast<R: Rng + ?Sized>(rng: &mut R, n: usize, total: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    assert!(total > 0.0, "total utilization must be positive");
    let mut out = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 1..n {
        let next = remaining * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        out.push(remaining - next);
        remaining = next;
    }
    out.push(remaining);
    out
}

/// UUniFast-Discard: resamples until every utilization is at most
/// `max_each`. Returns `None` after `max_attempts` failed draws (the target
/// may be infeasible, e.g. `total > n · max_each`).
///
/// # Panics
///
/// Panics if `n == 0`, `total <= 0` or `max_each <= 0`.
pub fn uunifast_discard<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    total: f64,
    max_each: f64,
    max_attempts: usize,
) -> Option<Vec<f64>> {
    assert!(max_each > 0.0, "per-task cap must be positive");
    if total > max_each * n as f64 {
        return None;
    }
    for _ in 0..max_attempts {
        let candidate = uunifast(rng, n, total);
        if candidate.iter().all(|&u| u <= max_each) {
            return Some(candidate);
        }
    }
    None
}

/// Log-uniform sample from `[min, max]`: `exp(U[ln min, ln max])`, rounded
/// to an integer tick count.
///
/// # Panics
///
/// Panics if `min == 0` or `min > max`.
pub fn log_uniform_period<R: Rng + ?Sized>(rng: &mut R, min: u64, max: u64) -> u64 {
    assert!(min >= 1, "periods must be positive");
    assert!(min <= max, "period minimum exceeds maximum");
    if min == max {
        return min;
    }
    let lo = (min as f64).ln();
    let hi = (max as f64).ln();
    let x = rng.gen_range(lo..=hi).exp().round() as u64;
    x.clamp(min, max)
}

/// Rounds a period up to the *period grid*: the nearest value of the form
/// `m · 2^k` with mantissa `16 ≤ m < 32` (values below 16 are kept as-is).
///
/// Restricting generated periods to this 4-bit-mantissa grid is the
/// standard trick for keeping schedulability experiments tractable: the
/// least common multiple of any set of grid periods divides
/// `lcm(16..32) · 2^k_max`, so exact rational utilization sums stay small
/// and simulator hyperperiods stay bounded — without visibly distorting a
/// log-uniform period distribution (grid steps are under 7% apart).
///
/// # Examples
///
/// ```
/// use fedsched_gen::params::round_period_to_grid;
///
/// assert_eq!(round_period_to_grid(16), 16);
/// assert_eq!(round_period_to_grid(33), 34);   // 17 · 2
/// assert_eq!(round_period_to_grid(1000), 1024); // 16 · 64
/// assert_eq!(round_period_to_grid(7), 7);     // below the grid: unchanged
/// ```
#[must_use]
pub fn round_period_to_grid(t: u64) -> u64 {
    if t < 16 {
        return t.max(1);
    }
    // Smallest grid value ≥ t: shift t down to a 5-bit window, then round
    // the mantissa up.
    let bits = 64 - t.leading_zeros(); // t has `bits` significant bits
    let k = bits - 5; // mantissa window [16, 32)
    let mantissa = t >> k;
    debug_assert!((16..32).contains(&mantissa));
    if mantissa << k == t {
        t
    } else {
        // 32 << k rolls over to 16 << (k+1): still a grid point. Saturate
        // at the largest representable grid value for inputs near u64::MAX.
        (mantissa + 1).checked_shl(k).unwrap_or(31 << 59)
    }
}

/// Rounds a value *down* to the period grid of [`round_period_to_grid`]
/// (values below 16 are kept as-is). Used for generated deadlines, which
/// must not exceed the period.
#[must_use]
pub fn round_down_to_grid(t: u64) -> u64 {
    if t < 16 {
        return t;
    }
    let bits = 64 - t.leading_zeros();
    let k = bits - 5;
    (t >> k) << k
}

/// How tight generated deadlines are relative to the window `[len, T]`:
/// `D = len + fraction · (T − len)` with `fraction` uniform in
/// `[min_fraction, max_fraction]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineTightness {
    /// Lower bound of the fraction (0 = deadlines hug the chain length).
    pub min_fraction: f64,
    /// Upper bound of the fraction (1 = implicit deadlines possible).
    pub max_fraction: f64,
}

impl DeadlineTightness {
    /// Creates a tightness range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ min ≤ max ≤ 1`.
    #[must_use]
    pub fn new(min_fraction: f64, max_fraction: f64) -> DeadlineTightness {
        assert!(
            (0.0..=1.0).contains(&min_fraction)
                && (0.0..=1.0).contains(&max_fraction)
                && min_fraction <= max_fraction,
            "tightness fractions must satisfy 0 ≤ min ≤ max ≤ 1"
        );
        DeadlineTightness {
            min_fraction,
            max_fraction,
        }
    }

    /// Implicit deadlines: `D = T` always.
    #[must_use]
    pub fn implicit() -> DeadlineTightness {
        DeadlineTightness::new(1.0, 1.0)
    }

    /// Samples a deadline in `[len, period]`.
    ///
    /// The result is clamped so that `D ≥ max(len, 1)` (the task stays
    /// chain-feasible and valid) and `D ≤ period` (constrained).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, len: u64, period: u64) -> u64 {
        let len = len.min(period);
        let f = if self.min_fraction == self.max_fraction {
            self.min_fraction
        } else {
            rng.gen_range(self.min_fraction..=self.max_fraction)
        };
        let d = len as f64 + f * (period - len) as f64;
        (d.round() as u64).clamp(len.max(1), period)
    }
}

impl Default for DeadlineTightness {
    /// Deadlines uniformly across the whole `[len, T]` window.
    fn default() -> Self {
        DeadlineTightness::new(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uunifast_sums_to_total() {
        let mut r = rng(1);
        for &total in &[0.5, 1.0, 3.7] {
            for &n in &[1usize, 2, 5, 20] {
                let us = uunifast(&mut r, n, total);
                assert_eq!(us.len(), n);
                let sum: f64 = us.iter().sum();
                assert!((sum - total).abs() < 1e-9, "n={n}, total={total}");
                assert!(us.iter().all(|&u| u >= 0.0));
            }
        }
    }

    #[test]
    fn uunifast_discard_respects_cap() {
        let mut r = rng(2);
        let us = uunifast_discard(&mut r, 8, 2.0, 0.5, 10_000).unwrap();
        assert!(us.iter().all(|&u| u <= 0.5));
        let sum: f64 = us.iter().sum();
        assert!((sum - 2.0).abs() < 1e-9);
    }

    #[test]
    fn uunifast_discard_infeasible_returns_none() {
        let mut r = rng(3);
        assert_eq!(uunifast_discard(&mut r, 2, 3.0, 1.0, 100), None);
    }

    #[test]
    fn log_uniform_stays_in_range() {
        let mut r = rng(4);
        for _ in 0..1000 {
            let p = log_uniform_period(&mut r, 10, 10_000);
            assert!((10..=10_000).contains(&p));
        }
        assert_eq!(log_uniform_period(&mut r, 7, 7), 7);
    }

    #[test]
    fn log_uniform_spreads_over_decades() {
        let mut r = rng(5);
        let samples: Vec<u64> = (0..2000)
            .map(|_| log_uniform_period(&mut r, 10, 100_000))
            .collect();
        let below_1k = samples.iter().filter(|&&p| p < 1000).count();
        // Log-uniform: half the mass below the geometric midpoint (1000).
        assert!(below_1k > 700 && below_1k < 1300, "got {below_1k}");
    }

    #[test]
    fn deadlines_between_len_and_period() {
        let mut r = rng(6);
        let t = DeadlineTightness::default();
        for _ in 0..1000 {
            let d = t.sample(&mut r, 15, 100);
            assert!((15..=100).contains(&d));
        }
    }

    #[test]
    fn implicit_tightness_pins_deadline_to_period() {
        let mut r = rng(7);
        let t = DeadlineTightness::implicit();
        assert_eq!(t.sample(&mut r, 3, 50), 50);
    }

    #[test]
    fn tight_tightness_pins_deadline_to_len() {
        let mut r = rng(8);
        let t = DeadlineTightness::new(0.0, 0.0);
        assert_eq!(t.sample(&mut r, 30, 100), 30);
        // Degenerate: len = 0 still yields a positive deadline.
        assert_eq!(t.sample(&mut r, 0, 100), 1);
    }

    #[test]
    fn deadline_handles_len_exceeding_period() {
        let mut r = rng(9);
        let t = DeadlineTightness::default();
        // len > period is clamped: D = period.
        assert_eq!(t.sample(&mut r, 200, 100), 100);
    }

    #[test]
    #[should_panic(expected = "tightness fractions")]
    fn bad_tightness_panics() {
        let _ = DeadlineTightness::new(0.8, 0.2);
    }

    #[test]
    fn grid_rounding_up_and_down() {
        for t in 1u64..5000 {
            let up = round_period_to_grid(t);
            let down = round_down_to_grid(t);
            assert!(up >= t);
            assert!(down <= t);
            if t >= 16 {
                // Both are grid points: mantissa in [16, 32).
                for g in [up, down] {
                    let bits = 64 - g.leading_zeros();
                    let m = g >> (bits - 5);
                    assert!((16..32).contains(&m), "{g} not on grid");
                }
                // Grid spacing is under 7%.
                assert!(up as f64 / t as f64 <= 17.0 / 16.0);
            } else {
                assert_eq!(up, t);
                assert_eq!(down, t);
            }
        }
    }

    #[test]
    fn grid_points_are_fixed_points() {
        for k in 0..20u32 {
            for m in 16u64..32 {
                let g = m << k;
                assert_eq!(round_period_to_grid(g), g);
                assert_eq!(round_down_to_grid(g), g);
            }
        }
    }

    #[test]
    fn grid_lcm_stays_small() {
        // The whole point: lcm of every grid point up to 2^20 stays tiny
        // relative to i128.
        fn gcd(a: u128, b: u128) -> u128 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let mut l: u128 = 1;
        for k in 0..16u32 {
            for m in 16u64..32 {
                let g = u128::from(m << k);
                l = l / gcd(l, g) * g;
            }
        }
        assert!(l < u128::from(u64::MAX), "lcm {l} too large");
    }
}
