//! Whole-task-system generation.
//!
//! Combines a DAG [`Topology`], UUniFast(-Discard) utilizations, a period
//! policy and a deadline-tightness range into a reproducible task-system
//! generator — the workload machinery behind the schedulability experiments
//! (DESIGN.md experiments E3–E7).

use fedsched_dag::graph::{Dag, DagBuilder};
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::params::{
    log_uniform_period, round_down_to_grid, round_period_to_grid, uunifast_discard,
    DeadlineTightness,
};
use crate::topology::{Span, Topology, WcetRange};

/// How task periods are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PeriodPolicy {
    /// Derive the period from the generated DAG volume and the target
    /// utilization: `T = max(round(vol / u), len, 1)`. WCETs are kept as
    /// generated, so per-task utilization lands almost exactly on target.
    DeriveFromUtilization,
    /// Sample the period log-uniformly from `[min, max]`, then rescale every
    /// WCET so the DAG volume approximates `u · T`.
    LogUniform {
        /// Minimum period.
        min: u64,
        /// Maximum period.
        max: u64,
    },
}

/// Configuration for random task-system generation.
///
/// Construct with [`SystemConfig::new`] and customise via the `with_*`
/// builder methods.
///
/// # Examples
///
/// ```
/// use fedsched_gen::system::SystemConfig;
///
/// let config = SystemConfig::new(8, 3.0).with_max_task_utilization(1.5);
/// let system = config.generate_seeded(42).expect("feasible target");
/// assert_eq!(system.len(), 8);
/// let u = system.total_utilization().to_f64();
/// assert!((u - 3.0).abs() < 0.4, "achieved {u}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    n_tasks: usize,
    total_utilization: f64,
    max_task_utilization: f64,
    topology: Topology,
    wcet: WcetRange,
    period: PeriodPolicy,
    tightness: DeadlineTightness,
    ensure_chain_feasible: bool,
}

impl SystemConfig {
    /// A config for `n_tasks` tasks totalling `total_utilization`, with
    /// defaults: layered topology, WCETs in `[1, 100]`, periods derived from
    /// utilization, deadlines uniform in `[len, T]`, per-task utilization
    /// capped at `total_utilization`, chain feasibility enforced.
    ///
    /// # Panics
    ///
    /// Panics if `n_tasks == 0` or `total_utilization <= 0`.
    #[must_use]
    pub fn new(n_tasks: usize, total_utilization: f64) -> SystemConfig {
        assert!(n_tasks > 0, "need at least one task");
        assert!(total_utilization > 0.0, "utilization must be positive");
        SystemConfig {
            n_tasks,
            total_utilization,
            max_task_utilization: total_utilization,
            topology: Topology::Layered {
                layers: Span::new(2, 5),
                width: Span::new(1, 5),
                edge_probability: 0.3,
            },
            wcet: WcetRange::default(),
            period: PeriodPolicy::DeriveFromUtilization,
            tightness: DeadlineTightness::default(),
            ensure_chain_feasible: true,
        }
    }

    /// Caps the utilization of any single task.
    #[must_use]
    pub fn with_max_task_utilization(mut self, max: f64) -> SystemConfig {
        assert!(max > 0.0, "per-task cap must be positive");
        self.max_task_utilization = max;
        self
    }

    /// Sets the DAG topology family.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> SystemConfig {
        self.topology = topology;
        self
    }

    /// Sets the per-vertex WCET range.
    #[must_use]
    pub fn with_wcet(mut self, wcet: WcetRange) -> SystemConfig {
        self.wcet = wcet;
        self
    }

    /// Sets the period policy.
    #[must_use]
    pub fn with_period(mut self, period: PeriodPolicy) -> SystemConfig {
        self.period = period;
        self
    }

    /// Sets the deadline tightness range.
    #[must_use]
    pub fn with_tightness(mut self, tightness: DeadlineTightness) -> SystemConfig {
        self.tightness = tightness;
        self
    }

    /// If `false`, periods/deadlines are not bumped to keep `len ≤ D`;
    /// chain-infeasible tasks may then be generated (useful for testing
    /// rejection paths).
    #[must_use]
    pub fn with_chain_feasibility(mut self, ensure: bool) -> SystemConfig {
        self.ensure_chain_feasible = ensure;
        self
    }

    /// Number of tasks this config generates.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.n_tasks
    }

    /// Target total utilization.
    #[must_use]
    pub fn target_utilization(&self) -> f64 {
        self.total_utilization
    }

    /// Generates one task system with the supplied RNG.
    ///
    /// Returns `None` if the utilization target is infeasible under the
    /// per-task cap (UUniFast-Discard gives up).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<TaskSystem> {
        let utils = uunifast_discard(
            rng,
            self.n_tasks,
            self.total_utilization,
            self.max_task_utilization,
            1000,
        )?;
        let mut system = TaskSystem::new();
        for u in utils {
            // Guard against pathological near-zero utilizations.
            let u = u.max(1e-4);
            let dag = self.topology.generate(rng, self.wcet);
            let task = self.realize_task(rng, dag, u);
            system.push(task);
        }
        Some(system)
    }

    /// Generates one task system from a fixed seed (deterministic).
    pub fn generate_seeded(&self, seed: u64) -> Option<TaskSystem> {
        self.generate(&mut StdRng::seed_from_u64(seed))
    }

    /// Turns a generated DAG plus a target utilization into a task,
    /// according to the period policy.
    fn realize_task<R: Rng + ?Sized>(&self, rng: &mut R, dag: Dag, u: f64) -> DagTask {
        let (dag, period) = match self.period {
            PeriodPolicy::DeriveFromUtilization => {
                let vol = dag.volume().ticks();
                let len = dag.longest_chain().length.ticks();
                let mut t = ((vol as f64) / u).round().max(1.0) as u64;
                if self.ensure_chain_feasible {
                    t = t.max(len);
                }
                // Grid-round upward: keeps utilization-sum denominators and
                // hyperperiods small (see `params::round_period_to_grid`).
                (dag, round_period_to_grid(t))
            }
            PeriodPolicy::LogUniform { min, max } => {
                let t = log_uniform_period(rng, min, max);
                let vol0 = dag.volume().ticks() as f64;
                let target = (u * t as f64).max(1.0);
                let factor = target / vol0;
                let mut b = DagBuilder::with_capacity(dag.vertex_count());
                let ids =
                    b.add_vertices(dag.wcets().iter().map(|w| {
                        Duration::new(((w.ticks() as f64 * factor).round() as u64).max(1))
                    }));
                for (a, z) in dag.edges() {
                    b.add_edge(ids[a.index()], ids[z.index()])
                        .expect("copied edges stay fresh");
                }
                let scaled = b.build().expect("copied DAG stays acyclic");
                let t = if self.ensure_chain_feasible {
                    t.max(scaled.longest_chain().length.ticks())
                } else {
                    t
                };
                (scaled, round_period_to_grid(t))
            }
        };
        let len = dag.longest_chain().length.ticks();
        let d = self.tightness.sample(rng, len, period);
        // Snap deadlines down to the grid too (they are density
        // denominators); fall back to the raw draw when the snap would
        // break chain feasibility.
        let snapped = round_down_to_grid(d);
        let d = if snapped >= len.max(1) { snapped } else { d };
        let d = if self.ensure_chain_feasible {
            d.max(len.max(1)).min(period)
        } else {
            d.min(period)
        };
        DagTask::new(dag, Duration::new(d), Duration::new(period))
            .expect("generated parameters are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_utilization() {
        let cfg = SystemConfig::new(10, 4.0).with_max_task_utilization(1.2);
        let sys = cfg.generate_seeded(1).unwrap();
        assert_eq!(sys.len(), 10);
        let u = sys.total_utilization().to_f64();
        assert!((u - 4.0).abs() < 0.5, "achieved {u}");
        assert_eq!(cfg.task_count(), 10);
        assert_eq!(cfg.target_utilization(), 4.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SystemConfig::new(6, 2.0);
        assert_eq!(cfg.generate_seeded(9), cfg.generate_seeded(9));
    }

    #[test]
    fn chain_feasibility_enforced_by_default() {
        let cfg = SystemConfig::new(12, 6.0).with_max_task_utilization(2.0);
        for seed in 0..20 {
            let sys = cfg.generate_seeded(seed).unwrap();
            assert!(sys.all_chains_feasible(), "seed {seed}");
            for (_, t) in sys.iter() {
                assert!(t.deadline() <= t.period(), "constrained deadline");
            }
        }
    }

    #[test]
    fn log_uniform_periods_respected() {
        let cfg = SystemConfig::new(8, 2.0)
            .with_period(PeriodPolicy::LogUniform {
                min: 100,
                max: 10_000,
            })
            .with_max_task_utilization(0.9);
        let sys = cfg.generate_seeded(3).unwrap();
        for (_, t) in sys.iter() {
            // Chain-feasibility bumping can only raise above min.
            assert!(t.period().ticks() >= 100);
            // Utilization approximately on target per task (cap 0.9 + slack).
            assert!(t.utilization().to_f64() < 1.2);
        }
    }

    #[test]
    fn implicit_deadline_generation() {
        let cfg = SystemConfig::new(5, 2.0)
            .with_tightness(DeadlineTightness::implicit())
            .with_max_task_utilization(0.8);
        let sys = cfg.generate_seeded(4).unwrap();
        for (_, t) in sys.iter() {
            assert_eq!(t.deadline(), t.period());
        }
    }

    #[test]
    fn infeasible_cap_returns_none() {
        let cfg = SystemConfig::new(2, 4.0).with_max_task_utilization(1.0);
        assert_eq!(cfg.generate_seeded(5), None);
    }

    #[test]
    fn high_utilization_tasks_emerge_when_cap_allows() {
        let cfg = SystemConfig::new(4, 6.0).with_max_task_utilization(3.0);
        let mut saw_high = false;
        for seed in 0..10 {
            let sys = cfg.generate_seeded(seed).unwrap();
            if sys.iter().any(|(_, t)| t.is_high_utilization()) {
                saw_high = true;
            }
        }
        assert!(saw_high, "expected some high-utilization tasks");
    }

    #[test]
    fn tight_deadlines_produce_high_density() {
        let cfg = SystemConfig::new(6, 3.0)
            .with_max_task_utilization(1.0)
            .with_tightness(DeadlineTightness::new(0.0, 0.1));
        let mut saw_high_density = false;
        for seed in 0..10 {
            let sys = cfg.generate_seeded(seed).unwrap();
            if !sys.high_density_ids().is_empty() {
                saw_high_density = true;
            }
        }
        assert!(saw_high_density, "tight deadlines should yield δ ≥ 1 tasks");
    }

    #[test]
    fn all_topologies_integrate() {
        for topo in [
            Topology::ErdosRenyi {
                vertices: Span::new(5, 15),
                edge_probability: 0.2,
            },
            Topology::NestedForkJoin {
                depth: Span::new(1, 2),
                branching: Span::new(2, 3),
            },
            Topology::SeriesParallel {
                operations: Span::new(4, 10),
            },
        ] {
            let cfg = SystemConfig::new(4, 1.5).with_topology(topo);
            let sys = cfg.generate_seeded(6).unwrap();
            assert_eq!(sys.len(), 4);
        }
    }
}
