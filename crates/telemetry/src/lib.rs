//! `fedsched-telemetry` — the observability layer for federated scheduling
//! of constrained-deadline sporadic DAG tasks (Baruah, DATE 2015).
//!
//! FEDCONS is only trustworthy in production if its behaviour is visible:
//! which phase of the two-phase algorithm (`MINPROCS` template search vs.
//! Baruah–Fisher DBF\* partitioning) a request spent its time in, what the
//! admission latency distribution looks like, and whether the frozen LS
//! templates actually hold at run time. This crate is the shared
//! vocabulary and plumbing for all of that:
//!
//! * [`event`] — typed [`TelemetryEvent`]s (spans over a closed
//!   [`SpanPhase`] vocabulary, counters over [`CounterKind`]), each
//!   stamped by one process-wide monotonic clock and optionally tagged
//!   with the request's [`TraceId`];
//! * [`sink`] — [`EventSink`]: a ring-buffer subscriber bounded in
//!   memory, and a no-op subscriber that reduces every record call to a
//!   single branch (held to the E17 <2% overhead bar by benchmark E18);
//! * [`prometheus`] — a text-exposition builder ([`PromText`]) plus the
//!   [`AnalysisProbe`](fedsched_analysis::probe::AnalysisProbe) renderer
//!   behind the admission server's `GET /metrics` endpoint;
//! * [`chrome`] — a Chrome / Perfetto `trace_events` exporter turning
//!   simulated [`TraceSegment`](fedsched_sim::trace::TraceSegment) runs
//!   and analysis spans into a `chrome://tracing` document.
//!
//! # Examples
//!
//! Record an analysis span and export it alongside a (tiny) execution
//! trace:
//!
//! ```
//! use fedsched_telemetry::chrome::ChromeTraceBuilder;
//! use fedsched_telemetry::event::{SpanPhase, TraceId};
//! use fedsched_telemetry::sink::EventSink;
//!
//! let mut sink = EventSink::ring(64);
//! let timer = sink.start_span();
//! // ... the work being measured ...
//! sink.end_span(timer, Some(TraceId(7)), SpanPhase::Sizing);
//!
//! let mut builder = ChromeTraceBuilder::new();
//! builder.push_events(&sink.events());
//! let json = builder.to_json();
//! assert!(json.contains("\"traceEvents\""));
//! # if cfg!(feature = "ring") { assert!(json.contains("sizing")); }
//! ```
//!
//! With the crate's `ring` feature disabled, `EventSink::ring` degrades to
//! the no-op sink and the example above exports an empty document — the
//! API is identical either way, so callers never feature-gate their own
//! instrumentation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod prometheus;
pub mod sink;

pub use chrome::{ChromeArgs, ChromeEvent, ChromeTraceBuilder, ChromeTraceDocument};
pub use event::{monotonic_nanos, CounterKind, SpanPhase, TelemetryEvent, TraceId};
pub use prometheus::{render_probe, validate_exposition, PromText};
#[cfg(feature = "ring")]
pub use sink::RingBuffer;
pub use sink::{EventSink, SpanTimer};
