//! Typed telemetry events: spans, counters, and the monotonic clock that
//! timestamps them.
//!
//! Every event carries an optional [`TraceId`] — the per-request
//! correlation token the admission protocol threads from client to
//! analysis and back — and a timestamp from a process-wide monotonic
//! clock ([`monotonic_nanos`]), so events from different subsystems
//! (service request handling, analysis phases, simulation) interleave on
//! one coherent timeline.

use std::sync::OnceLock;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// A per-request correlation token.
///
/// Clients mint one (any `u64`), attach it to an `Admit` request, and the
/// server echoes it in the response and stamps it on every span the
/// request's analysis produced. `TraceId`s need not be unique — the server
/// never keys on them — but correlating is only useful when they are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TraceId(pub u64);

impl core::fmt::Display for TraceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "trace:{}", self.0)
    }
}

/// The named phase a span covers. The set is closed on purpose: phases are
/// a stable vocabulary shared by the Prometheus exposition, the Chrome
/// trace exporter, and docs/OBSERVABILITY.md — not free-form strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanPhase {
    /// Template-cache lookup for a high-density admission (hit or miss).
    CacheLookup,
    /// FEDCONS phase 1: `MINPROCS` cluster sizing.
    Sizing,
    /// FEDCONS phase 2: Baruah–Fisher first-fit partition replay.
    Partition,
    /// One whole admission decision as seen by the server.
    Admission,
    /// One whole removal (suffix replay included).
    Removal,
    /// One whole batch analysis (CLI `analyze` / `trace`).
    Analysis,
    /// One simulated run of a schedule.
    Simulation,
    /// Reading and framing one request line off the connection (server
    /// request lane; includes waiting for the client's bytes).
    RequestRead,
    /// Parsing one framed request line into a typed `Request` (server
    /// request lane).
    RequestParse,
    /// Appending one decision's records to the write-ahead log, fsync
    /// included (server request lane).
    WalAppend,
}

impl SpanPhase {
    /// The stable lower-case name used in exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::CacheLookup => "cache_lookup",
            SpanPhase::Sizing => "sizing",
            SpanPhase::Partition => "partition",
            SpanPhase::Admission => "admission",
            SpanPhase::Removal => "removal",
            SpanPhase::Analysis => "analysis",
            SpanPhase::Simulation => "simulation",
            SpanPhase::RequestRead => "request_read",
            SpanPhase::RequestParse => "request_parse",
            SpanPhase::WalAppend => "wal_append",
        }
    }

    /// Whether the phase belongs to the server's request-handling lane
    /// (routed to its own process row in the Chrome trace export) rather
    /// than the analysis lane.
    #[must_use]
    pub fn is_server_stage(self) -> bool {
        matches!(
            self,
            SpanPhase::RequestRead | SpanPhase::RequestParse | SpanPhase::WalAppend
        )
    }
}

/// What a counter event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterKind {
    /// A template-cache hit.
    CacheHit,
    /// A template-cache miss.
    CacheMiss,
    /// An admission that succeeded.
    AdmissionAccepted,
    /// An admission that was rejected.
    AdmissionRejected,
    /// A runtime deadline miss observed by the watchdog.
    DeadlineMiss,
    /// A vertex whose observed on-line LS start diverged from the frozen
    /// template `σᵢ` offset (Graham-anomaly exposure, paper footnote 2).
    TemplateDivergence,
    /// An instant at which a shared EDF processor's pending demand
    /// provably exceeded the time left to a deadline.
    SharedOverload,
    /// A per-connection read deadline expired on the admission server
    /// (the connection is kept unless expiries repeat).
    ReadTimeout,
    /// A request frame exceeded the server's configured byte cap and the
    /// connection was rejected.
    OversizedRequest,
    /// A connection was turned away because the server was already
    /// serving its configured maximum number of connections.
    BusyRejection,
    /// A connection was closed by the graceful-shutdown drain while the
    /// client still held it open.
    ConnectionDrained,
    /// A `MINPROCS` candidate eliminated by the Graham bounds without
    /// running List Scheduling.
    LsRunsPruned,
    /// A work item offered to the parallel analysis fan-out (counted
    /// independently of the pool width actually in effect).
    ParTasksDispatched,
    /// A decision record appended to the admission server's write-ahead
    /// log.
    WalRecordAppended,
    /// Bytes written to the write-ahead log (delta carries the count).
    WalBytesWritten,
    /// An `fsync` issued by the write-ahead log.
    WalFsync,
    /// A durable state snapshot written next to the write-ahead log.
    WalSnapshotWritten,
    /// A logged decision re-executed during boot recovery.
    WalRecordReplayed,
}

impl CounterKind {
    /// The stable lower-case name used in exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::CacheHit => "cache_hit",
            CounterKind::CacheMiss => "cache_miss",
            CounterKind::AdmissionAccepted => "admission_accepted",
            CounterKind::AdmissionRejected => "admission_rejected",
            CounterKind::DeadlineMiss => "deadline_miss",
            CounterKind::TemplateDivergence => "template_divergence",
            CounterKind::SharedOverload => "shared_overload",
            CounterKind::ReadTimeout => "read_timeout",
            CounterKind::OversizedRequest => "oversized_request",
            CounterKind::BusyRejection => "busy_rejection",
            CounterKind::ConnectionDrained => "connection_drained",
            CounterKind::LsRunsPruned => "ls_runs_pruned",
            CounterKind::ParTasksDispatched => "par_tasks_dispatched",
            CounterKind::WalRecordAppended => "wal_record_appended",
            CounterKind::WalBytesWritten => "wal_bytes_written",
            CounterKind::WalFsync => "wal_fsync",
            CounterKind::WalSnapshotWritten => "wal_snapshot_written",
            CounterKind::WalRecordReplayed => "wal_record_replayed",
        }
    }
}

/// One telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A completed span: a named phase with monotonic start/end stamps.
    Span {
        /// The request the span belongs to, if any.
        trace_id: Option<TraceId>,
        /// Which phase ran.
        phase: SpanPhase,
        /// Monotonic start, nanoseconds since the process epoch.
        start_nanos: u64,
        /// Monotonic end, nanoseconds since the process epoch.
        end_nanos: u64,
    },
    /// A counter increment at an instant.
    Counter {
        /// The request the increment belongs to, if any.
        trace_id: Option<TraceId>,
        /// What is being counted.
        kind: CounterKind,
        /// Monotonic stamp, nanoseconds since the process epoch.
        at_nanos: u64,
        /// The increment (usually 1).
        delta: u64,
    },
}

impl TelemetryEvent {
    /// The event's trace id, if it carries one.
    #[must_use]
    pub fn trace_id(&self) -> Option<TraceId> {
        match *self {
            TelemetryEvent::Span { trace_id, .. } | TelemetryEvent::Counter { trace_id, .. } => {
                trace_id
            }
        }
    }

    /// The event's (start) timestamp in nanoseconds since the epoch.
    #[must_use]
    pub fn nanos(&self) -> u64 {
        match *self {
            TelemetryEvent::Span { start_nanos, .. } => start_nanos,
            TelemetryEvent::Counter { at_nanos, .. } => at_nanos,
        }
    }
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide telemetry epoch (the first call).
///
/// Monotonic and cheap: one `Instant::now()` plus a subtraction. All spans
/// and counters share this clock, so events from different subsystems
/// order correctly on one timeline.
#[must_use]
pub fn monotonic_nanos() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = monotonic_nanos();
        let b = monotonic_nanos();
        assert!(b >= a);
    }

    #[test]
    fn events_roundtrip_through_serde() {
        let events = [
            TelemetryEvent::Span {
                trace_id: Some(TraceId(7)),
                phase: SpanPhase::Sizing,
                start_nanos: 10,
                end_nanos: 25,
            },
            TelemetryEvent::Counter {
                trace_id: None,
                kind: CounterKind::DeadlineMiss,
                at_nanos: 99,
                delta: 2,
            },
        ];
        for ev in events {
            let json = serde_json::to_string(&ev).unwrap();
            let back: TelemetryEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn accessors_cover_both_shapes() {
        let span = TelemetryEvent::Span {
            trace_id: Some(TraceId(1)),
            phase: SpanPhase::Admission,
            start_nanos: 5,
            end_nanos: 9,
        };
        assert_eq!(span.trace_id(), Some(TraceId(1)));
        assert_eq!(span.nanos(), 5);
        let counter = TelemetryEvent::Counter {
            trace_id: None,
            kind: CounterKind::CacheHit,
            at_nanos: 3,
            delta: 1,
        };
        assert_eq!(counter.trace_id(), None);
        assert_eq!(counter.nanos(), 3);
    }

    #[test]
    fn stable_names_are_lower_snake_case() {
        for phase in [
            SpanPhase::CacheLookup,
            SpanPhase::Sizing,
            SpanPhase::Partition,
            SpanPhase::Admission,
            SpanPhase::Removal,
            SpanPhase::Analysis,
            SpanPhase::Simulation,
            SpanPhase::RequestRead,
            SpanPhase::RequestParse,
            SpanPhase::WalAppend,
        ] {
            assert!(phase
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        assert_eq!(
            CounterKind::TemplateDivergence.name(),
            "template_divergence"
        );
        for kind in [
            CounterKind::ReadTimeout,
            CounterKind::OversizedRequest,
            CounterKind::BusyRejection,
            CounterKind::ConnectionDrained,
            CounterKind::LsRunsPruned,
            CounterKind::ParTasksDispatched,
            CounterKind::WalRecordAppended,
            CounterKind::WalBytesWritten,
            CounterKind::WalFsync,
            CounterKind::WalSnapshotWritten,
            CounterKind::WalRecordReplayed,
        ] {
            assert!(kind
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        assert_eq!(TraceId(4).to_string(), "trace:4");
    }
}
