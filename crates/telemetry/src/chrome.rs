//! Chrome / Perfetto `trace_events` JSON export.
//!
//! The [trace-event format] is the JSON array-of-objects dialect that
//! `chrome://tracing`, Perfetto, and Speedscope all ingest. This module
//! maps both halves of a FEDCONS run onto it:
//!
//! - **Runtime** ([`ChromeTraceBuilder::push_execution_trace`]): every
//!   [`TraceSegment`] of a simulated run becomes one complete (`ph: "X"`)
//!   event on process 0, with the processor as the thread id — the viewer
//!   shows one swim-lane per processor, exactly the Gantt the ASCII
//!   renderer draws. One simulator tick maps to one microsecond, the
//!   format's native `ts`/`dur` unit.
//! - **Analysis** ([`ChromeTraceBuilder::push_events`]): telemetry spans
//!   (sizing, partition replay, whole admissions) become complete events
//!   on process 1 with `ts` in microseconds since the process epoch, and
//!   counters become instant (`ph: "I"`) events. Trace ids ride along in
//!   `args`, so a request can be followed from protocol to analysis phase.
//! - **Server requests**: spans whose phase belongs to the server's
//!   request pipeline (read/frame, parse, WAL append) land on process 2
//!   ([`PID_SERVER`]), one lane above the analysis phases they bracket, so
//!   a request's transport cost and its analysis cost line up visually.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
use fedsched_sim::trace::{ExecutionTrace, TraceSegment};
use fedsched_sim::watchdog::WatchdogReport;

use serde::{Deserialize, Serialize};

use crate::event::{CounterKind, TelemetryEvent};

/// The process id carrying runtime (simulated execution) lanes.
pub const PID_RUNTIME: u64 = 0;
/// The process id carrying analysis-phase spans and counters.
pub const PID_ANALYSIS: u64 = 1;
/// The process id carrying the server's request-handling stages
/// (read/frame, parse, WAL append) — see
/// [`SpanPhase::is_server_stage`](crate::event::SpanPhase::is_server_stage).
pub const PID_SERVER: u64 = 2;

/// Structured `args` payload attached to every event. Fields that do not
/// apply are `null` in the JSON, which trace viewers ignore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChromeArgs {
    /// Dense task index (runtime events).
    pub task: Option<u64>,
    /// Vertex index within the task's DAG; `null` for sequentialised
    /// execution on a shared EDF processor.
    pub vertex: Option<u64>,
    /// Global processor index (runtime events).
    pub processor: Option<u64>,
    /// The request's correlation token (analysis events).
    pub trace_id: Option<u64>,
    /// Free-form annotation (counter kind, divergence details, ...).
    pub detail: Option<String>,
}

impl ChromeArgs {
    fn empty() -> ChromeArgs {
        ChromeArgs {
            task: None,
            vertex: None,
            processor: None,
            trace_id: None,
            detail: None,
        }
    }
}

/// One trace event in the JSON-array dialect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Display name of the slice (e.g. `"τ3[v2]"`).
    pub name: String,
    /// Comma-free category: `"runtime"`, `"analysis"`, or `"counter"`.
    pub cat: String,
    /// Event phase: `"X"` (complete) or `"I"` (instant).
    pub ph: String,
    /// Start timestamp, microseconds.
    pub ts: u64,
    /// Duration, microseconds (zero for instants).
    pub dur: u64,
    /// Process lane ([`PID_RUNTIME`], [`PID_ANALYSIS`], or
    /// [`PID_SERVER`]).
    pub pid: u64,
    /// Thread lane: processor index on the runtime pid, 0 elsewhere.
    pub tid: u64,
    /// Structured metadata.
    pub args: ChromeArgs,
}

/// The whole `{"traceEvents": [...]}` document `chrome://tracing` loads.
#[allow(non_snake_case)]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChromeTraceDocument {
    /// All events, in insertion order (viewers sort by `ts` themselves).
    pub traceEvents: Vec<ChromeEvent>,
    /// Unit hint for the viewer's ruler ("ms" or "ns"); we emit "ms".
    pub displayTimeUnit: String,
}

/// Accumulates events from execution traces and telemetry streams, then
/// emits one [`ChromeTraceDocument`].
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<ChromeEvent>,
}

impl ChromeTraceBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> ChromeTraceBuilder {
        ChromeTraceBuilder::default()
    }

    /// Adds every segment of a simulated run as a complete event on the
    /// runtime pid: `tid` = processor, `ts` = start tick, `dur` = length
    /// in ticks (1 tick = 1 µs).
    pub fn push_execution_trace(&mut self, trace: &ExecutionTrace) {
        for segment in trace.segments() {
            self.events.push(segment_event(segment));
        }
    }

    /// Adds telemetry spans (complete events) and counters (instants) on
    /// the analysis pid, timestamps converted from nanoseconds to
    /// microseconds.
    pub fn push_events(&mut self, events: &[TelemetryEvent]) {
        for event in events {
            self.events.push(match *event {
                TelemetryEvent::Span {
                    trace_id,
                    phase,
                    start_nanos,
                    end_nanos,
                } => ChromeEvent {
                    name: phase.name().to_owned(),
                    cat: if phase.is_server_stage() {
                        "server".to_owned()
                    } else {
                        "analysis".to_owned()
                    },
                    ph: "X".to_owned(),
                    ts: start_nanos / 1_000,
                    dur: end_nanos.saturating_sub(start_nanos) / 1_000,
                    pid: if phase.is_server_stage() {
                        PID_SERVER
                    } else {
                        PID_ANALYSIS
                    },
                    tid: 0,
                    args: ChromeArgs {
                        trace_id: trace_id.map(|t| t.0),
                        ..ChromeArgs::empty()
                    },
                },
                TelemetryEvent::Counter {
                    trace_id,
                    kind,
                    at_nanos,
                    delta,
                } => ChromeEvent {
                    name: kind.name().to_owned(),
                    cat: "counter".to_owned(),
                    ph: "I".to_owned(),
                    ts: at_nanos / 1_000,
                    dur: 0,
                    pid: PID_ANALYSIS,
                    tid: 0,
                    args: ChromeArgs {
                        trace_id: trace_id.map(|t| t.0),
                        detail: Some(format!("{}+{delta}", kind.name())),
                        ..ChromeArgs::empty()
                    },
                },
            });
        }
    }

    /// Adds one instant event per *nonzero* watchdog counter on the
    /// runtime pid, stamped at `at_ticks` (conventionally the end of the
    /// simulated window), so anomaly totals appear alongside the execution
    /// lanes they describe.
    pub fn push_watchdog(&mut self, report: &WatchdogReport, at_ticks: u64) {
        for (kind, count) in [
            (CounterKind::DeadlineMiss, report.deadline_misses),
            (CounterKind::TemplateDivergence, report.template_divergences),
            (CounterKind::SharedOverload, report.shared_overloads),
        ] {
            if count > 0 {
                self.events.push(ChromeEvent {
                    name: kind.name().to_owned(),
                    cat: "counter".to_owned(),
                    ph: "I".to_owned(),
                    ts: at_ticks,
                    dur: 0,
                    pid: PID_RUNTIME,
                    tid: 0,
                    args: ChromeArgs {
                        detail: Some(format!("{}+{count}", kind.name())),
                        ..ChromeArgs::empty()
                    },
                });
            }
        }
    }

    /// Number of events accumulated so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been accumulated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The finished document.
    #[must_use]
    pub fn build(self) -> ChromeTraceDocument {
        ChromeTraceDocument {
            traceEvents: self.events,
            displayTimeUnit: "ms".to_owned(),
        }
    }

    /// The finished document as JSON, ready for `chrome://tracing`.
    ///
    /// # Panics
    ///
    /// Never in practice: the document contains no non-serializable state.
    #[must_use]
    pub fn to_json(self) -> String {
        serde_json::to_string(&self.build()).expect("chrome trace document serializes")
    }
}

fn segment_event(segment: &TraceSegment) -> ChromeEvent {
    let name = match segment.vertex {
        Some(v) => format!("{}[v{v}]", segment.task),
        None => segment.task.to_string(),
    };
    ChromeEvent {
        name,
        cat: "runtime".to_owned(),
        ph: "X".to_owned(),
        ts: segment.start.ticks(),
        dur: segment.end.saturating_since(segment.start).ticks(),
        pid: PID_RUNTIME,
        tid: u64::from(segment.processor),
        args: ChromeArgs {
            task: Some(segment.task.index() as u64),
            vertex: segment.vertex.map(u64::from),
            processor: Some(u64::from(segment.processor)),
            ..ChromeArgs::empty()
        },
    }
}

#[cfg(test)]
mod tests {
    use fedsched_dag::system::TaskId;
    use fedsched_dag::time::Time;

    use crate::event::{CounterKind, SpanPhase, TraceId};

    use super::*;

    fn sample_trace() -> ExecutionTrace {
        let mut trace = ExecutionTrace::new(2);
        trace.push(TraceSegment {
            processor: 0,
            task: TaskId::from_index(3),
            vertex: Some(2),
            start: Time::new(1),
            end: Time::new(4),
        });
        trace.push(TraceSegment {
            processor: 1,
            task: TaskId::from_index(0),
            vertex: None,
            start: Time::new(0),
            end: Time::new(2),
        });
        trace
    }

    #[test]
    fn segments_become_complete_events_with_metadata() {
        let mut builder = ChromeTraceBuilder::new();
        builder.push_execution_trace(&sample_trace());
        let doc = builder.build();
        assert_eq!(doc.traceEvents.len(), 2);
        let first = &doc.traceEvents[0];
        assert_eq!(first.ph, "X");
        assert_eq!(first.pid, PID_RUNTIME);
        assert_eq!(first.tid, 0);
        assert_eq!(first.ts, 1);
        assert_eq!(first.dur, 3);
        assert_eq!(first.name, "τ3[v2]");
        assert_eq!(first.args.task, Some(3));
        assert_eq!(first.args.vertex, Some(2));
        assert_eq!(first.args.processor, Some(0));
        let second = &doc.traceEvents[1];
        assert_eq!(second.name, "τ0");
        assert_eq!(second.args.vertex, None);
    }

    #[test]
    fn spans_and_counters_land_on_the_analysis_pid() {
        let mut builder = ChromeTraceBuilder::new();
        builder.push_events(&[
            TelemetryEvent::Span {
                trace_id: Some(TraceId(7)),
                phase: SpanPhase::Sizing,
                start_nanos: 4_000,
                end_nanos: 9_500,
            },
            TelemetryEvent::Counter {
                trace_id: None,
                kind: CounterKind::CacheMiss,
                at_nanos: 12_000,
                delta: 1,
            },
        ]);
        let doc = builder.build();
        let span = &doc.traceEvents[0];
        assert_eq!(span.name, "sizing");
        assert_eq!(span.ph, "X");
        assert_eq!(span.pid, PID_ANALYSIS);
        assert_eq!((span.ts, span.dur), (4, 5));
        assert_eq!(span.args.trace_id, Some(7));
        let instant = &doc.traceEvents[1];
        assert_eq!(instant.ph, "I");
        assert_eq!(instant.dur, 0);
        assert_eq!(instant.args.detail.as_deref(), Some("cache_miss+1"));
    }

    #[test]
    fn server_stage_spans_land_on_the_server_pid() {
        let mut builder = ChromeTraceBuilder::new();
        builder.push_events(&[
            TelemetryEvent::Span {
                trace_id: Some(TraceId(3)),
                phase: SpanPhase::RequestRead,
                start_nanos: 1_000,
                end_nanos: 5_000,
            },
            TelemetryEvent::Span {
                trace_id: Some(TraceId(3)),
                phase: SpanPhase::WalAppend,
                start_nanos: 6_000,
                end_nanos: 8_000,
            },
            TelemetryEvent::Span {
                trace_id: Some(TraceId(3)),
                phase: SpanPhase::Admission,
                start_nanos: 5_000,
                end_nanos: 6_000,
            },
        ]);
        let doc = builder.build();
        assert_eq!(doc.traceEvents[0].pid, PID_SERVER);
        assert_eq!(doc.traceEvents[0].cat, "server");
        assert_eq!(doc.traceEvents[0].name, "request_read");
        assert_eq!(doc.traceEvents[1].pid, PID_SERVER);
        assert_eq!(doc.traceEvents[1].name, "wal_append");
        // Analysis phases stay on their own lane.
        assert_eq!(doc.traceEvents[2].pid, PID_ANALYSIS);
        assert_eq!(doc.traceEvents[2].cat, "analysis");
    }

    #[test]
    fn watchdog_counters_appear_only_when_nonzero() {
        let mut builder = ChromeTraceBuilder::new();
        builder.push_watchdog(
            &WatchdogReport {
                deadline_misses: 0,
                template_divergences: 4,
                shared_overloads: 1,
            },
            500,
        );
        let doc = builder.build();
        assert_eq!(doc.traceEvents.len(), 2, "zero counters are elided");
        assert_eq!(doc.traceEvents[0].name, "template_divergence");
        assert_eq!(doc.traceEvents[0].ts, 500);
        assert_eq!(doc.traceEvents[0].pid, PID_RUNTIME);
        assert_eq!(
            doc.traceEvents[0].args.detail.as_deref(),
            Some("template_divergence+4")
        );
        assert_eq!(doc.traceEvents[1].name, "shared_overload");
    }

    #[test]
    fn document_roundtrips_through_json() {
        let mut builder = ChromeTraceBuilder::new();
        builder.push_execution_trace(&sample_trace());
        let doc = builder.build();
        let json = serde_json::to_string(&doc).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"displayTimeUnit\""));
        let back: ChromeTraceDocument = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
    }
}
