//! Prometheus text exposition (version 0.0.4) rendering.
//!
//! [`PromText`] is a small append-only builder producing the line protocol
//! a Prometheus scraper ingests: `# HELP` / `# TYPE` comments followed by
//! `name{label="value",...} value` samples. The admission server renders
//! its counters through it (`fedsched-service::stats::render_prometheus`),
//! and [`render_probe`] maps the platform-lifetime
//! [`AnalysisProbe`] onto stable `fedsched_analysis_*` metric names.
//!
//! [`validate_exposition`] is the inverse guard: it checks that every line
//! of an exposition is either a comment or a well-formed sample, which the
//! service smoke test runs against a live scrape.

use core::fmt::Write as _;

use fedsched_analysis::probe::AnalysisProbe;

/// A Prometheus text-exposition builder.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    #[must_use]
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emits the `# HELP` and `# TYPE` header for a metric family.
    /// `kind` is one of `counter`, `gauge`, `histogram`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one integer sample, with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.write_name_labels(name, labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// Emits one floating-point sample, with optional labels.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.write_name_labels(name, labels);
        if value == f64::INFINITY {
            let _ = writeln!(self.out, " +Inf");
        } else {
            let _ = writeln!(self.out, " {value}");
        }
    }

    fn write_name_labels(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
    }

    /// Renders a power-of-two histogram (bucket `i` counting observations
    /// in `[2^i, 2^{i+1})`, last bucket open-ended) as a Prometheus
    /// cumulative histogram in the same unit. The `_sum` sample is the
    /// upper-bound estimate (every observation priced at its bucket's
    /// exclusive upper bound), consistent with the quantile semantics
    /// documented on the service's latency histogram.
    pub fn power_of_two_histogram(&mut self, name: &str, help: &str, buckets: &[u64]) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        let mut sum_upper = 0u64;
        let last = buckets.len().saturating_sub(1);
        for (i, &count) in buckets.iter().enumerate() {
            cumulative += count;
            let upper = 2u64.saturating_pow(i as u32 + 1);
            sum_upper = sum_upper.saturating_add(count.saturating_mul(upper));
            if i < last {
                self.sample(
                    &format!("{name}_bucket"),
                    &[("le", &upper.to_string())],
                    cumulative,
                );
            }
        }
        self.sample(&format!("{name}_bucket"), &[("le", "+Inf")], cumulative);
        self.sample(&format!("{name}_sum"), &[], sum_upper);
        self.sample(&format!("{name}_count"), &[], cumulative);
    }

    /// Renders a power-of-two histogram as additional labeled series of an
    /// already-opened histogram family: no `# HELP`/`# TYPE` header is
    /// emitted, and every sample (including `_sum` and `_count`) carries
    /// `labels`. Bucket samples append `le` after the caller's labels, so a
    /// labeled `_bucket` series never ends in `le="+Inf"}` alone — callers
    /// that strip-match the unlabeled suffix stay unambiguous.
    pub fn power_of_two_histogram_labeled(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        buckets: &[u64],
    ) {
        let mut cumulative = 0u64;
        let mut sum_upper = 0u64;
        let last = buckets.len().saturating_sub(1);
        for (i, &count) in buckets.iter().enumerate() {
            cumulative += count;
            let upper = 2u64.saturating_pow(i as u32 + 1);
            sum_upper = sum_upper.saturating_add(count.saturating_mul(upper));
            if i < last {
                let mut with_le = labels.to_vec();
                let upper = upper.to_string();
                with_le.push(("le", &upper));
                self.sample(&format!("{name}_bucket"), &with_le, cumulative);
            }
        }
        let mut with_le = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.sample(&format!("{name}_bucket"), &with_le, cumulative);
        self.sample(&format!("{name}_sum"), labels, sum_upper);
        self.sample(&format!("{name}_count"), labels, cumulative);
    }

    /// The finished exposition text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders the cumulative [`AnalysisProbe`] counters under stable
/// `<prefix>_*` metric names (the service uses prefix `fedsched_analysis`).
pub fn render_probe(prefix: &str, probe: &AnalysisProbe, out: &mut PromText) {
    let counters: [(&str, &str, u64); 12] = [
        (
            "ls_runs",
            "Graham List-Scheduling simulations run",
            probe.ls_runs,
        ),
        (
            "makespan_evaluations",
            "Makespan-versus-deadline template evaluations",
            probe.makespan_evaluations,
        ),
        (
            "ls_runs_pruned",
            "MINPROCS candidates eliminated by Graham bounds without an LS run",
            probe.ls_runs_pruned,
        ),
        (
            "par_tasks_dispatched",
            "Work items offered to the parallel analysis fan-out",
            probe.par_tasks_dispatched,
        ),
        (
            "dbf_approx_evals",
            "Approximate demand-bound (DBF*) evaluations",
            probe.dbf_approx_evals,
        ),
        (
            "dbf_exact_evals",
            "Exact demand-bound evaluations (QPA / deadline walk)",
            probe.dbf_exact_evals,
        ),
        (
            "fits_calls",
            "First-fit admission tests against resident sets",
            probe.fits_calls,
        ),
        ("cache_hits", "Template-cache hits", probe.cache_hits),
        ("cache_misses", "Template-cache misses", probe.cache_misses),
        (
            "sizing_nanos",
            "Wall time in MINPROCS cluster sizing, nanoseconds",
            probe.sizing_nanos,
        ),
        (
            "partition_nanos",
            "Wall time in first-fit partitioning, nanoseconds",
            probe.partition_nanos,
        ),
        (
            "wall_nanos",
            "Total analysis wall time, nanoseconds",
            probe.wall_nanos,
        ),
    ];
    for (name, help, value) in counters {
        let full = format!("{prefix}_{name}_total");
        out.header(&full, help, "counter");
        out.sample(&full, &[], value);
    }
}

/// Checks that every line of `text` is a valid exposition line: empty, a
/// `#` comment, or `name{labels} value` with a parseable number.
///
/// # Errors
///
/// The first offending line, quoted.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value separator in {line:?}"))?;
        if !(value == "+Inf" || value == "-Inf" || value == "NaN" || value.parse::<f64>().is_ok()) {
            return Err(format!("unparseable value {value:?} in {line:?}"));
        }
        let name = series.split('{').next().unwrap_or_default();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("invalid metric name {name:?} in {line:?}"));
        }
        if let Some(rest) = series.strip_prefix(name) {
            if !(rest.is_empty() || rest.starts_with('{') && rest.ends_with('}')) {
                return Err(format!("malformed label block {rest:?} in {line:?}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_and_headers_format_correctly() {
        let mut p = PromText::new();
        p.header("jobs_total", "Jobs seen", "counter");
        p.sample("jobs_total", &[], 42);
        p.sample("jobs_total", &[("kind", "high"), ("ok", "yes")], 7);
        p.sample_f64("ratio", &[], 0.5);
        let text = p.finish();
        assert!(text.contains("# HELP jobs_total Jobs seen\n"));
        assert!(text.contains("# TYPE jobs_total counter\n"));
        assert!(
            text.contains("\njobs_total 42\n") || text.starts_with("jobs_total 42\n") || {
                text.lines().any(|l| l == "jobs_total 42")
            }
        );
        assert!(text
            .lines()
            .any(|l| l == "jobs_total{kind=\"high\",ok=\"yes\"} 7"));
        assert!(text.lines().any(|l| l == "ratio 0.5"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.sample("m", &[("reason", "a \"quoted\"\nthing\\x")], 1);
        let text = p.finish();
        assert!(
            text.contains(r#"reason="a \"quoted\"\nthing\\x""#),
            "{text}"
        );
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn power_of_two_histogram_is_cumulative_with_inf() {
        let mut p = PromText::new();
        // bucket 0: [1,2) ×3, bucket 1: [2,4) ×1, bucket 2 (last): ×2.
        p.power_of_two_histogram("lat_us", "latency", &[3, 1, 2]);
        let text = p.finish();
        assert!(text.lines().any(|l| l == "lat_us_bucket{le=\"2\"} 3"));
        assert!(text.lines().any(|l| l == "lat_us_bucket{le=\"4\"} 4"));
        assert!(text.lines().any(|l| l == "lat_us_bucket{le=\"+Inf\"} 6"));
        assert!(text.lines().any(|l| l == "lat_us_count 6"));
        // sum upper bound: 3·2 + 1·4 + 2·8 = 26.
        assert!(text.lines().any(|l| l == "lat_us_sum 26"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn labeled_histogram_extends_a_family_without_a_header() {
        let mut p = PromText::new();
        p.power_of_two_histogram("lat_us", "latency", &[3, 1, 2]);
        p.power_of_two_histogram_labeled("lat_us", &[("shard", "1")], &[1, 0, 1]);
        let text = p.finish();
        // Exactly one header for the family.
        assert_eq!(text.matches("# TYPE lat_us histogram").count(), 1);
        assert!(text
            .lines()
            .any(|l| l == "lat_us_bucket{shard=\"1\",le=\"2\"} 1"));
        assert!(text
            .lines()
            .any(|l| l == "lat_us_bucket{shard=\"1\",le=\"+Inf\"} 2"));
        // sum upper bound: 1·2 + 0·4 + 1·8 = 10.
        assert!(text.lines().any(|l| l == "lat_us_sum{shard=\"1\"} 10"));
        assert!(text.lines().any(|l| l == "lat_us_count{shard=\"1\"} 2"));
        // The caller's label comes first, so labeled bucket series never end
        // with the bare `le="+Inf"}` suffix the unlabeled harvest matches.
        assert!(!text.lines().any(|l| l.starts_with("lat_us_bucket{shard")
            && l.contains("le=\"+Inf\"")
            && !l.contains("shard=\"1\",le")));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn probe_rendering_emits_every_counter() {
        let probe = AnalysisProbe {
            ls_runs: 3,
            wall_nanos: 500,
            ..AnalysisProbe::default()
        };
        let mut p = PromText::new();
        render_probe("fedsched_analysis", &probe, &mut p);
        let text = p.finish();
        for name in [
            "ls_runs",
            "makespan_evaluations",
            "ls_runs_pruned",
            "par_tasks_dispatched",
            "dbf_approx_evals",
            "dbf_exact_evals",
            "fits_calls",
            "cache_hits",
            "cache_misses",
            "sizing_nanos",
            "partition_nanos",
            "wall_nanos",
        ] {
            assert!(
                text.contains(&format!("fedsched_analysis_{name}_total")),
                "missing {name}"
            );
        }
        assert!(text
            .lines()
            .any(|l| l == "fedsched_analysis_ls_runs_total 3"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("ok_metric 1\n# comment\n\n").is_ok());
        assert!(validate_exposition("novalue\n").is_err());
        assert!(validate_exposition("metric notanumber\n").is_err());
        assert!(validate_exposition("1leading_digit 2\n").is_err());
        assert!(validate_exposition("bad-name 2\n").is_err());
        assert!(validate_exposition("m{unclosed=\"x\" 2\n").is_err());
        assert!(validate_exposition("m{a=\"b\"} +Inf\n").is_ok());
    }
}
