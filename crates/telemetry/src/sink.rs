//! The event sink: where subsystems hand their telemetry.
//!
//! [`EventSink`] is a concrete enum, not a trait object, so the disabled
//! path is a single branch the optimizer sees through: with the
//! [`EventSink::Noop`] variant (or with the crate's `ring` feature off,
//! which removes the ring variant entirely) every `record` call reduces to
//! a discriminant test on a value the caller owns — no allocation, no
//! timestamp, no indirect call. The E18 benchmark
//! (`fedsched-bench/benches/telemetry_overhead.rs`) holds the enabled path
//! to within 2% of this no-op path on the admission hot loop.

use crate::event::{monotonic_nanos, CounterKind, SpanPhase, TelemetryEvent, TraceId};

/// A bounded ring buffer of the most recent events.
///
/// Pushing into a full buffer overwrites the oldest event and counts the
/// displacement in [`RingBuffer::dropped`]; telemetry must never make the
/// server unbounded in memory.
#[cfg(feature = "ring")]
#[derive(Debug, Clone)]
pub struct RingBuffer {
    slots: Vec<TelemetryEvent>,
    capacity: usize,
    /// Index of the next write.
    head: usize,
    /// Events overwritten before anyone read them.
    dropped: u64,
}

#[cfg(feature = "ring")]
impl RingBuffer {
    /// An empty buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use [`EventSink::Noop`] to disable).
    #[must_use]
    pub fn new(capacity: usize) -> RingBuffer {
        assert!(capacity > 0, "ring buffer needs a positive capacity");
        RingBuffer {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends one event, evicting the oldest if full.
    pub fn push(&mut self, event: TelemetryEvent) {
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.head] = event;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<TelemetryEvent> {
        if self.slots.len() < self.capacity {
            self.slots.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.slots[self.head..]);
            out.extend_from_slice(&self.slots[..self.head]);
            out
        }
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Events lost to eviction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// An in-flight span: the start stamp, taken only when the sink is live.
///
/// `None` means the sink was disabled when the span began — finishing it is
/// free and records nothing, so call sites need no `if enabled` of their
/// own around the timed region.
#[derive(Debug, Clone, Copy)]
#[must_use = "finish the span with EventSink::end_span"]
pub struct SpanTimer(Option<u64>);

impl SpanTimer {
    /// A timer that will record nothing.
    pub const DISABLED: SpanTimer = SpanTimer(None);
}

/// Where telemetry events go.
#[derive(Debug, Default)]
pub enum EventSink {
    /// Discard everything (the default, and the only variant without the
    /// `ring` feature).
    #[default]
    Noop,
    /// Retain the most recent events in a bounded [`RingBuffer`].
    #[cfg(feature = "ring")]
    Ring(RingBuffer),
}

impl EventSink {
    /// The disabled sink.
    #[must_use]
    pub fn noop() -> EventSink {
        EventSink::Noop
    }

    /// A ring-buffer sink of the given capacity. Zero capacity — or a
    /// build without the `ring` feature — yields the no-op sink, so
    /// callers configure capacity unconditionally.
    #[must_use]
    pub fn ring(capacity: usize) -> EventSink {
        #[cfg(feature = "ring")]
        {
            if capacity > 0 {
                return EventSink::Ring(RingBuffer::new(capacity));
            }
        }
        let _ = capacity;
        EventSink::Noop
    }

    /// Whether recording does anything.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !matches!(self, EventSink::Noop)
    }

    /// Records one event (dropped by the no-op sink).
    #[inline]
    pub fn record(&mut self, event: TelemetryEvent) {
        match self {
            EventSink::Noop => {}
            #[cfg(feature = "ring")]
            EventSink::Ring(ring) => ring.push(event),
        }
    }

    /// Starts a span: takes a monotonic stamp only if the sink is live.
    #[inline]
    pub fn start_span(&self) -> SpanTimer {
        if self.is_enabled() {
            SpanTimer(Some(monotonic_nanos()))
        } else {
            SpanTimer::DISABLED
        }
    }

    /// Completes a span started with [`EventSink::start_span`].
    #[inline]
    pub fn end_span(&mut self, timer: SpanTimer, trace_id: Option<TraceId>, phase: SpanPhase) {
        if let SpanTimer(Some(start_nanos)) = timer {
            self.record(TelemetryEvent::Span {
                trace_id,
                phase,
                start_nanos,
                end_nanos: monotonic_nanos(),
            });
        }
    }

    /// Records a counter increment of 1.
    #[inline]
    pub fn count(&mut self, trace_id: Option<TraceId>, kind: CounterKind) {
        self.add(trace_id, kind, 1);
    }

    /// Records a counter increment of `delta`.
    #[inline]
    pub fn add(&mut self, trace_id: Option<TraceId>, kind: CounterKind, delta: u64) {
        if self.is_enabled() {
            self.record(TelemetryEvent::Counter {
                trace_id,
                kind,
                at_nanos: monotonic_nanos(),
                delta,
            });
        }
    }

    /// A snapshot of the retained events, oldest first (empty for no-op).
    #[must_use]
    pub fn events(&self) -> Vec<TelemetryEvent> {
        match self {
            EventSink::Noop => Vec::new(),
            #[cfg(feature = "ring")]
            EventSink::Ring(ring) => ring.to_vec(),
        }
    }

    /// Events lost to ring eviction (zero for no-op).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        match self {
            EventSink::Noop => 0,
            #[cfg(feature = "ring")]
            EventSink::Ring(ring) => ring.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(at: u64) -> TelemetryEvent {
        TelemetryEvent::Counter {
            trace_id: None,
            kind: CounterKind::CacheHit,
            at_nanos: at,
            delta: 1,
        }
    }

    #[test]
    fn noop_sink_records_nothing_for_free() {
        let mut sink = EventSink::noop();
        assert!(!sink.is_enabled());
        let timer = sink.start_span();
        sink.record(counter(1));
        sink.count(None, CounterKind::CacheMiss);
        sink.end_span(timer, Some(TraceId(1)), SpanPhase::Sizing);
        assert!(sink.events().is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn zero_capacity_ring_degrades_to_noop() {
        let sink = EventSink::ring(0);
        assert!(!sink.is_enabled());
    }

    #[cfg(feature = "ring")]
    #[test]
    fn ring_sink_retains_spans_and_counters() {
        let mut sink = EventSink::ring(16);
        assert!(sink.is_enabled());
        let timer = sink.start_span();
        sink.end_span(timer, Some(TraceId(9)), SpanPhase::Partition);
        sink.count(Some(TraceId(9)), CounterKind::AdmissionAccepted);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            TelemetryEvent::Span {
                trace_id: Some(TraceId(9)),
                phase: SpanPhase::Partition,
                ..
            }
        ));
        assert_eq!(events[1].trace_id(), Some(TraceId(9)));
    }

    #[cfg(feature = "ring")]
    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = RingBuffer::new(3);
        for i in 0..5 {
            ring.push(counter(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let stamps: Vec<u64> = ring.to_vec().iter().map(TelemetryEvent::nanos).collect();
        assert_eq!(stamps, vec![2, 3, 4], "oldest-first order after wrap");
    }

    #[cfg(feature = "ring")]
    #[test]
    #[should_panic(expected = "positive capacity")]
    fn ring_buffer_rejects_zero_capacity() {
        let _ = RingBuffer::new(0);
    }

    #[cfg(feature = "ring")]
    #[test]
    fn span_timer_from_disabled_sink_is_inert_on_live_sink() {
        let mut live = EventSink::ring(4);
        live.end_span(SpanTimer::DISABLED, None, SpanPhase::Admission);
        assert!(live.events().is_empty());
    }
}
