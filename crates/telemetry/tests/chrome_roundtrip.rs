//! Acceptance test for the Chrome exporter: a real FEDCONS-admitted
//! federated run exports so that every `TraceSegment` appears exactly once
//! as a complete `"X"` event with matching processor/task/vertex metadata,
//! and the document survives a JSON round trip.

use std::collections::HashMap;

use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_dag::examples::paper_example2;
use fedsched_dag::time::Duration;
use fedsched_graham::list::PriorityPolicy;
use fedsched_sim::federated::{simulate_federated_traced, ClusterDispatch};
use fedsched_sim::model::SimConfig;
use fedsched_telemetry::chrome::{ChromeTraceBuilder, ChromeTraceDocument, PID_RUNTIME};

#[test]
fn every_segment_exports_exactly_once_with_matching_metadata() {
    // Paper Example 2 with n = 4: four high-density tasks, each earning a
    // dedicated single-processor cluster on m = 4.
    let system = paper_example2(4);
    let schedule = fedcons(&system, 4, FedConsConfig::default()).expect("example 2 admits on m=n");
    let horizon = Duration::new(system.hyperperiod().ticks() * 3);
    let (report, trace) = simulate_federated_traced(
        &system,
        &schedule,
        SimConfig::worst_case(horizon),
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    assert!(report.is_clean(), "admitted run must be clean");
    assert!(!trace.segments().is_empty(), "run must produce segments");

    let mut builder = ChromeTraceBuilder::new();
    builder.push_execution_trace(&trace);
    let json = builder.to_json();
    let doc: ChromeTraceDocument = serde_json::from_str(&json).expect("document parses back");

    // Count each segment's expected (ts, dur, tid, task, vertex) tuple,
    // then consume exporter events against it.
    let mut expected: HashMap<(u64, u64, u64, u64, Option<u64>), u64> = HashMap::new();
    for seg in trace.segments() {
        let key = (
            seg.start.ticks(),
            seg.end.saturating_since(seg.start).ticks(),
            u64::from(seg.processor),
            seg.task.index() as u64,
            seg.vertex.map(u64::from),
        );
        *expected.entry(key).or_insert(0) += 1;
    }

    assert_eq!(doc.traceEvents.len(), trace.segments().len());
    for event in &doc.traceEvents {
        assert_eq!(event.ph, "X", "runtime segments export as complete events");
        assert_eq!(event.pid, PID_RUNTIME);
        assert_eq!(event.cat, "runtime");
        assert_eq!(
            event.args.processor,
            Some(event.tid),
            "processor arg mirrors the thread lane"
        );
        let key = (
            event.ts,
            event.dur,
            event.tid,
            event.args.task.expect("runtime events carry a task"),
            event.args.vertex,
        );
        let count = expected
            .get_mut(&key)
            .unwrap_or_else(|| panic!("unexpected event {event:?}"));
        assert!(*count > 0, "segment {key:?} exported more times than run");
        *count -= 1;
    }
    assert!(
        expected.values().all(|&c| c == 0),
        "segments missing from export: {expected:?}"
    );
}

#[test]
fn rerun_dispatch_on_shared_pool_exports_sequential_segments() {
    // A single low-density task lands in the shared EDF pool: exporter
    // must handle vertex-less segments (vertex arg null).
    let system = paper_example2(2);
    let schedule = fedcons(&system, 2, FedConsConfig::default()).expect("admits");
    let (_, trace) = simulate_federated_traced(
        &system,
        &schedule,
        SimConfig::worst_case(Duration::new(system.hyperperiod().ticks() * 2)),
        ClusterDispatch::RerunListScheduling,
        PriorityPolicy::ListOrder,
    );
    let mut builder = ChromeTraceBuilder::new();
    builder.push_execution_trace(&trace);
    let doc: ChromeTraceDocument =
        serde_json::from_str(&builder.to_json()).expect("document parses back");
    assert_eq!(doc.traceEvents.len(), trace.segments().len());
}
