//! Property-based cross-validation of the analysis machinery.
//!
//! The central soundness property: any partition accepted by the approximate
//! `DBF*` first-fit test must be schedulable per-processor under the *exact*
//! EDF processor-demand criterion. Plus: QPA and the exhaustive walk always
//! agree, and `DBF*` dominates `dbf` pointwise.

use fedsched_analysis::dbf::{dbf, dbf_approx, SequentialView};
use fedsched_analysis::edf::{demand_horizon, edf_exact, edf_qpa, DEFAULT_BUDGET};
use fedsched_analysis::partition::{partition_first_fit, PartitionConfig};
use fedsched_dag::rational::Rational;
use fedsched_dag::system::TaskId;
use fedsched_dag::time::Duration;
use proptest::prelude::*;

/// A random constrained-deadline sequential task: T ∈ \[2, 60\], C ≤ T,
/// D ∈ [C, T].
fn arb_view() -> impl Strategy<Value = SequentialView> {
    (2u64..=60).prop_flat_map(|t| {
        (1u64..=t, Just(t)).prop_flat_map(|(c, t)| {
            (c..=t).prop_map(move |d| {
                SequentialView::new(Duration::new(c), Duration::new(d), Duration::new(t))
            })
        })
    })
}

fn arb_task_set(max: usize) -> impl Strategy<Value = Vec<SequentialView>> {
    prop::collection::vec(arb_view(), 1..=max)
}

proptest! {
    /// QPA and the exhaustive deadline walk always return the same verdict.
    #[test]
    fn qpa_agrees_with_exhaustive(tasks in arb_task_set(6)) {
        let a = edf_exact(&tasks, DEFAULT_BUDGET).unwrap();
        let b = edf_qpa(&tasks, DEFAULT_BUDGET).unwrap();
        prop_assert_eq!(a.is_schedulable(), b.is_schedulable());
    }

    /// DBF* dominates the exact dbf at every sampled point and is tight at
    /// t = D.
    #[test]
    fn dbf_star_dominates(v in arb_view(), t in 0u64..=500) {
        let t = Duration::new(t);
        prop_assert!(dbf_approx(&v, t) >= Rational::from(dbf(&v, t).ticks()));
        prop_assert_eq!(
            dbf_approx(&v, v.deadline),
            Rational::from(dbf(&v, v.deadline).ticks())
        );
    }

    /// DBF* never exceeds exact dbf by more than one extra job's WCET
    /// (the standard tightness bound: DBF*(t) < dbf(t) + C).
    #[test]
    fn dbf_star_within_one_job(v in arb_view(), t in 0u64..=500) {
        let t = Duration::new(t);
        let exact = Rational::from(dbf(&v, t).ticks());
        let extra = Rational::from(v.wcet.ticks());
        prop_assert!(dbf_approx(&v, t) < exact + extra);
    }

    /// Soundness of the partitioner: with the default config, every
    /// processor of an accepted partition passes the exact EDF test.
    #[test]
    fn accepted_partitions_are_exactly_schedulable(
        tasks in arb_task_set(8),
        m in 1usize..=4,
    ) {
        let ids: Vec<(TaskId, SequentialView)> = tasks
            .iter()
            .enumerate()
            .map(|(i, &v)| (TaskId::from_index(i), v))
            .collect();
        if let Ok(p) = partition_first_fit(&ids, m, PartitionConfig::default()) {
            for (_, assigned) in p.iter() {
                let views: Vec<SequentialView> =
                    assigned.iter().map(|id| tasks[id.index()]).collect();
                let verdict = edf_qpa(&views, DEFAULT_BUDGET).unwrap();
                prop_assert!(
                    verdict.is_schedulable(),
                    "DBF* accepted an EDF-infeasible processor: {views:?}"
                );
            }
            // Every task is placed exactly once.
            let mut placed = vec![false; tasks.len()];
            for (_, assigned) in p.iter() {
                for id in assigned {
                    prop_assert!(!placed[id.index()], "task placed twice");
                    placed[id.index()] = true;
                }
            }
            prop_assert!(placed.iter().all(|&b| b));
        }
    }

    /// Monotonicity: if first-fit succeeds on m processors it succeeds on
    /// m + 1.
    #[test]
    fn partition_monotone_in_processors(tasks in arb_task_set(8), m in 1usize..=4) {
        let ids: Vec<(TaskId, SequentialView)> = tasks
            .iter()
            .enumerate()
            .map(|(i, &v)| (TaskId::from_index(i), v))
            .collect();
        let small = partition_first_fit(&ids, m, PartitionConfig::default());
        if small.is_ok() {
            prop_assert!(
                partition_first_fit(&ids, m + 1, PartitionConfig::default()).is_ok()
            );
        }
    }

    /// A single task is accepted by the partitioner iff C ≤ D (its own
    /// demand condition), matching exact EDF for singletons.
    #[test]
    fn singleton_partition_matches_edf(v in arb_view()) {
        let ids = [(TaskId::from_index(0), v)];
        let accepted = partition_first_fit(&ids, 1, PartitionConfig::default()).is_ok();
        let exact = edf_qpa(&[v], DEFAULT_BUDGET).unwrap().is_schedulable();
        prop_assert_eq!(accepted, exact);
    }

    /// Verdicts are invariant under task order permutations (EDF tests are
    /// set-level properties).
    #[test]
    fn edf_verdict_order_invariant(mut tasks in arb_task_set(6)) {
        let forward = edf_qpa(&tasks, DEFAULT_BUDGET).unwrap().is_schedulable();
        tasks.reverse();
        let backward = edf_qpa(&tasks, DEFAULT_BUDGET).unwrap().is_schedulable();
        prop_assert_eq!(forward, backward);
    }

    /// No violation exists beyond the demand horizon when U < 1: spot-check
    /// a handful of deadlines above it for schedulable sets.
    #[test]
    fn horizon_really_bounds_violations(tasks in arb_task_set(5)) {
        let u: Rational = tasks.iter().map(SequentialView::utilization).sum();
        prop_assume!(u < Rational::ONE);
        if edf_exact(&tasks, DEFAULT_BUDGET).unwrap().is_schedulable() {
            let horizon = demand_horizon(&tasks);
            for extra in [1u64, 7, 64, 1001] {
                let t = horizon + Duration::new(extra);
                let demand: u128 = tasks
                    .iter()
                    .map(|v| u128::from(dbf(v, t).ticks()))
                    .sum();
                prop_assert!(demand <= u128::from(t.ticks()));
            }
        }
    }
}

proptest! {
    /// Per-processor containment: any placement the `DBF*` test admits is
    /// admitted by the exact-EDF test too (the approximation only ever
    /// rejects more).
    ///
    /// The Fig. 4 condition is only evaluated in deadline order — residents
    /// always carry deadlines at most the candidate's — so the property is
    /// stated under that precondition. (Without it the DBF* check at the
    /// candidate's deadline says nothing about later resident deadlines,
    /// and indeed fails: that asymmetry is *why* the algorithm sorts.)
    #[test]
    fn exact_admission_contains_approx_admission(
        resident in prop::collection::vec(arb_view(), 0..=4),
        candidate in arb_view(),
    ) {
        use fedsched_analysis::partition::fits;
        use fedsched_dag::rational::Rational;
        prop_assume!(resident.iter().all(|r| r.deadline <= candidate.deadline));
        let u: Rational = resident.iter().map(SequentialView::utilization).sum();
        // The residents themselves must be a plausible first-fit state:
        // schedulable together.
        prop_assume!(edf_qpa(&resident, DEFAULT_BUDGET).unwrap().is_schedulable());
        let approx = fits(&resident, u, &candidate, PartitionConfig::approx());
        if approx {
            prop_assert!(
                fits(&resident, u, &candidate, PartitionConfig::exact(DEFAULT_BUDGET)),
                "exact test rejected an approx-admitted placement"
            );
        }
    }

    /// Exact-EDF first-fit never partitions onto an EDF-infeasible
    /// processor (mirrors the DBF* soundness property).
    #[test]
    fn exact_partitions_are_exactly_schedulable(
        tasks in arb_task_set(8),
        m in 1usize..=4,
    ) {
        let ids: Vec<(TaskId, SequentialView)> = tasks
            .iter()
            .enumerate()
            .map(|(i, &v)| (TaskId::from_index(i), v))
            .collect();
        if let Ok(p) = partition_first_fit(&ids, m, PartitionConfig::exact(DEFAULT_BUDGET)) {
            for (_, assigned) in p.iter() {
                let views: Vec<SequentialView> =
                    assigned.iter().map(|id| tasks[id.index()]).collect();
                prop_assert!(edf_qpa(&views, DEFAULT_BUDGET).unwrap().is_schedulable());
            }
        }
    }

    /// The Spuri RTA is never *tighter* than the exact EDF verdict: whenever
    /// every response-time upper bound meets its deadline, the exact
    /// processor-demand criterion must also accept the set. (The converse
    /// can fail — the RTA is sufficient, not necessary — so only this
    /// direction is a law.)
    #[test]
    fn rta_bounds_never_tighter_than_exact_verdict(tasks in arb_task_set(6)) {
        use fedsched_analysis::response_time::edf_response_times;
        if let Ok(bounds) = edf_response_times(&tasks, DEFAULT_BUDGET) {
            // Each bound is a genuine upper bound: at least the task's own
            // WCET.
            for (r, t) in bounds.as_slice().iter().zip(&tasks) {
                prop_assert!(*r >= t.wcet, "bound {r:?} below WCET {:?}", t.wcet);
            }
            if bounds.all_within_deadlines(&tasks) {
                prop_assert!(
                    edf_exact(&tasks, DEFAULT_BUDGET).unwrap().is_schedulable(),
                    "RTA accepted a set the exact test rejects: {tasks:?}"
                );
            }
        }
    }

    /// Same law on every processor of a random exact-EDF first-fit
    /// partition: per-processor RTA acceptance implies the per-processor
    /// exact verdict (the partitioner only relies on the latter).
    #[test]
    fn rta_never_tighter_than_exact_on_random_partitions(
        tasks in arb_task_set(8),
        m in 1usize..=4,
    ) {
        use fedsched_analysis::response_time::edf_response_times;
        let ids: Vec<(TaskId, SequentialView)> = tasks
            .iter()
            .enumerate()
            .map(|(i, &v)| (TaskId::from_index(i), v))
            .collect();
        if let Ok(p) = partition_first_fit(&ids, m, PartitionConfig::exact(DEFAULT_BUDGET)) {
            for (_, assigned) in p.iter() {
                let views: Vec<SequentialView> =
                    assigned.iter().map(|id| tasks[id.index()]).collect();
                if views.is_empty() {
                    continue;
                }
                if let Ok(bounds) = edf_response_times(&views, DEFAULT_BUDGET) {
                    if bounds.all_within_deadlines(&views) {
                        prop_assert!(
                            edf_exact(&views, DEFAULT_BUDGET).unwrap().is_schedulable(),
                            "RTA tighter than exact on processor {views:?}"
                        );
                    }
                }
            }
        }
    }
}
