//! Exact uniprocessor EDF schedulability for constrained-deadline sporadic
//! tasks.
//!
//! Each shared processor of a federated schedule runs preemptive EDF (paper
//! Section IV). EDF is optimal on one processor, and the *processor demand
//! criterion* of Baruah, Mok & Rosier \[2\] decides schedulability exactly:
//! a task set is EDF-schedulable iff
//!
//! ```text
//! ∀ t > 0:  Σ_i dbf(τ_i, t) ≤ t
//! ```
//!
//! Only instants that are absolute deadlines (`k·T_i + D_i`) can violate the
//! condition, and for `U < 1` the check can stop at a finite bound `L`. Two
//! equivalent deciders are provided:
//!
//! * [`edf_exact`] — enumerate every deadline up to `L` (reference
//!   implementation);
//! * [`edf_qpa`] — Quick Processor-demand Analysis (Zhang & Burns, 2009),
//!   which walks *backwards* from `L` and typically inspects a tiny fraction
//!   of the points.
//!
//! These are used to cross-validate the partitions produced by the
//! approximate first-fit test, and to measure how conservative `DBF*` is.

use core::cmp::Reverse;
use core::fmt;
use std::collections::BinaryHeap;

use fedsched_dag::rational::Rational;
use fedsched_dag::time::Duration;

use crate::dbf::SequentialView;
use crate::probe::AnalysisProbe;

/// Outcome of an exact EDF schedulability test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdfVerdict {
    /// The task set meets all deadlines under preemptive uniprocessor EDF.
    Schedulable,
    /// Demand exceeds supply at the witness instant.
    Unschedulable {
        /// A window length `t` with `Σ dbf(τ_i, t) > t`.
        witness: Duration,
    },
}

impl EdfVerdict {
    /// `true` for [`EdfVerdict::Schedulable`].
    #[must_use]
    pub fn is_schedulable(self) -> bool {
        matches!(self, EdfVerdict::Schedulable)
    }
}

/// Resource-limit failure of an exact EDF test.
///
/// The processor demand criterion is decidable, but the number of test
/// points up to the bound `L` can be astronomically large (it degenerates to
/// the hyperperiod when `U = 1`). Tests take an explicit budget and report
/// exhaustion rather than silently running forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestBudgetExceeded {
    /// Points (or QPA iterations) the test was allowed.
    pub budget: usize,
}

impl fmt::Display for TestBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exact EDF test exceeded its budget of {} test points",
            self.budget
        )
    }
}

impl std::error::Error for TestBudgetExceeded {}

/// Default test-point budget: ample for every workload in this repository.
pub const DEFAULT_BUDGET: usize = 10_000_000;

fn total_utilization(tasks: &[SequentialView]) -> Rational {
    tasks.iter().map(SequentialView::utilization).sum()
}

fn total_demand(tasks: &[SequentialView], t: Duration) -> u128 {
    tasks
        .iter()
        .map(|task| u128::from(crate::dbf::dbf(task, t).ticks()))
        .sum()
}

/// The analysis horizon `L`: deadlines beyond it cannot be first violations.
///
/// For `U < 1` this is `max(D_max, Σ (T_i − D_i)·u_i / (1 − U))`; for
/// `U = 1` it falls back to `hyperperiod + D_max`; for `U > 1` the caller
/// should not need a horizon (the set is trivially unschedulable), but the
/// fallback bound is returned so a witness can still be located.
#[must_use]
pub fn demand_horizon(tasks: &[SequentialView]) -> Duration {
    let u = total_utilization(tasks);
    let d_max = tasks
        .iter()
        .map(|t| t.deadline)
        .max()
        .unwrap_or(Duration::ZERO);
    if u < Rational::ONE {
        // Σ (T_i − D_i)·u_i / (1 − U), exact.
        let num: Rational = tasks
            .iter()
            .map(|t| {
                let slack = t.period.saturating_sub(t.deadline);
                Rational::from(slack.ticks()) * t.utilization()
            })
            .sum();
        let la = num / (Rational::ONE - u);
        let la = Duration::new(u64::try_from(la.ceil().max(0)).unwrap_or(u64::MAX));
        d_max.max(la)
    } else {
        // Hyperperiod fallback (saturating).
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let mut l: u64 = 1;
        for t in tasks {
            let p = t.period.ticks();
            let g = gcd(l, p);
            match (l / g).checked_mul(p) {
                Some(v) => l = v,
                None => return Duration::MAX,
            }
        }
        Duration::new(l.saturating_add(d_max.ticks()))
    }
}

/// Exact EDF test by exhaustive deadline enumeration up to the horizon.
///
/// Deadlines of all tasks are merged in ascending order with a heap; the
/// cumulative demand is maintained incrementally so each point costs
/// `O(log n)`.
///
/// # Errors
///
/// Returns [`TestBudgetExceeded`] if more than `budget` deadline points lie
/// below the horizon.
///
/// # Examples
///
/// ```
/// use fedsched_analysis::dbf::SequentialView;
/// use fedsched_analysis::edf::{edf_exact, EdfVerdict, DEFAULT_BUDGET};
/// use fedsched_dag::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tasks = [
///     SequentialView::new(Duration::new(1), Duration::new(2), Duration::new(4)),
///     SequentialView::new(Duration::new(2), Duration::new(6), Duration::new(8)),
/// ];
/// assert_eq!(edf_exact(&tasks, DEFAULT_BUDGET)?, EdfVerdict::Schedulable);
/// # Ok(())
/// # }
/// ```
pub fn edf_exact(
    tasks: &[SequentialView],
    budget: usize,
) -> Result<EdfVerdict, TestBudgetExceeded> {
    let mut scratch = AnalysisProbe::default();
    edf_exact_probed(tasks, budget, &mut scratch)
}

/// [`edf_exact`] with cost accounting: every deadline point processed adds
/// one exact-`dbf` evaluation to `probe`.
///
/// # Errors
///
/// Same as [`edf_exact`].
pub fn edf_exact_probed(
    tasks: &[SequentialView],
    budget: usize,
    probe: &mut AnalysisProbe,
) -> Result<EdfVerdict, TestBudgetExceeded> {
    if tasks.is_empty() {
        return Ok(EdfVerdict::Schedulable);
    }
    let horizon = demand_horizon(tasks);
    // Merged ascending deadline walk: heap of (next deadline, task index).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| Reverse((t.deadline.ticks(), i)))
        .collect();
    let mut demand: u128 = 0;
    let mut spent = 0usize;
    let over_capacity = total_utilization(tasks) > Rational::ONE;

    while let Some(&Reverse((t, _))) = heap.peek() {
        if t > horizon.ticks() && !over_capacity {
            break;
        }
        // Accumulate every job whose deadline is exactly t.
        while let Some(&Reverse((t2, i))) = heap.peek() {
            if t2 != t {
                break;
            }
            heap.pop();
            demand += u128::from(tasks[i].wcet.ticks());
            if let Some(next) = t2.checked_add(tasks[i].period.ticks()) {
                heap.push(Reverse((next, i)));
            }
            spent += 1;
            probe.dbf_exact_evals = probe.dbf_exact_evals.saturating_add(1);
            if spent > budget {
                return Err(TestBudgetExceeded { budget });
            }
        }
        if demand > u128::from(t) {
            return Ok(EdfVerdict::Unschedulable {
                witness: Duration::new(t),
            });
        }
    }
    Ok(EdfVerdict::Schedulable)
}

/// The largest absolute deadline of any task strictly below `t`, or `None`
/// if every first deadline is at or above `t`.
fn max_deadline_below(tasks: &[SequentialView], t: Duration) -> Option<Duration> {
    tasks
        .iter()
        .filter_map(|task| {
            let d = task.deadline.ticks();
            let t = t.ticks();
            if d >= t {
                return None;
            }
            // Largest k ≥ 0 with k·T + D < t.
            let k = (t - d - 1) / task.period.ticks();
            Some(Duration::new(k * task.period.ticks() + d))
        })
        .max()
}

/// Quick Processor-demand Analysis (QPA) — the fast exact EDF test.
///
/// Walks backwards from the horizon: starting at the largest deadline below
/// `L`, repeatedly jump to `h(t)` (the demand at `t`) while `h(t) < t`, or to
/// the previous deadline when `h(t) = t`. Terminates with a verdict identical
/// to [`edf_exact`], usually after very few iterations.
///
/// # Errors
///
/// Returns [`TestBudgetExceeded`] if the walk takes more than `budget`
/// iterations (theoretically impossible for sane inputs before exhausting
/// distinct demand values, but guarded for robustness).
pub fn edf_qpa(tasks: &[SequentialView], budget: usize) -> Result<EdfVerdict, TestBudgetExceeded> {
    let mut scratch = AnalysisProbe::default();
    edf_qpa_probed(tasks, budget, &mut scratch)
}

/// [`edf_qpa`] with cost accounting: every QPA iteration evaluates the
/// exact `dbf` of each task once, adding `tasks.len()` exact-`dbf`
/// evaluations to `probe`.
///
/// # Errors
///
/// Same as [`edf_qpa`].
pub fn edf_qpa_probed(
    tasks: &[SequentialView],
    budget: usize,
    probe: &mut AnalysisProbe,
) -> Result<EdfVerdict, TestBudgetExceeded> {
    if tasks.is_empty() {
        return Ok(EdfVerdict::Schedulable);
    }
    if total_utilization(tasks) > Rational::ONE {
        // Delegate witness search to the exhaustive walk (guaranteed finite).
        return edf_exact_probed(tasks, budget, probe);
    }
    let horizon = demand_horizon(tasks);
    let d_min = tasks
        .iter()
        .map(|t| t.deadline)
        .min()
        .expect("non-empty task set");

    // t ← max{ d | d < L } — or the horizon itself if no deadline is below
    // it (then there is nothing to check).
    let Some(mut t) = max_deadline_below(tasks, horizon + Duration::new(1)) else {
        return Ok(EdfVerdict::Schedulable);
    };
    let mut spent = 0usize;
    loop {
        spent += 1;
        if spent > budget {
            return Err(TestBudgetExceeded { budget });
        }
        probe.dbf_exact_evals = probe.dbf_exact_evals.saturating_add(tasks.len() as u64);
        let h = total_demand(tasks, t);
        if h > u128::from(t.ticks()) {
            return Ok(EdfVerdict::Unschedulable { witness: t });
        }
        if h <= u128::from(d_min.ticks()) {
            return Ok(EdfVerdict::Schedulable);
        }
        if h < u128::from(t.ticks()) {
            t = Duration::new(u64::try_from(h).expect("demand below t fits in u64"));
        } else {
            match max_deadline_below(tasks, t) {
                Some(prev) => t = prev,
                None => return Ok(EdfVerdict::Schedulable),
            }
        }
    }
}

/// The exact EDF test for *implicit-deadline* sets: `U ≤ 1` (Liu & Layland).
///
/// Provided for the implicit-deadline federated baseline; for constrained
/// deadlines use [`edf_exact`] or [`edf_qpa`].
#[must_use]
pub fn edf_utilization_test(tasks: &[SequentialView]) -> bool {
    total_utilization(tasks) <= Rational::ONE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(c: u64, d: u64, t: u64) -> SequentialView {
        SequentialView::new(Duration::new(c), Duration::new(d), Duration::new(t))
    }

    fn both(tasks: &[SequentialView]) -> EdfVerdict {
        let a = edf_exact(tasks, DEFAULT_BUDGET).expect("within budget");
        let b = edf_qpa(tasks, DEFAULT_BUDGET).expect("within budget");
        assert_eq!(a.is_schedulable(), b.is_schedulable(), "deciders disagree");
        a
    }

    #[test]
    fn empty_set_is_schedulable() {
        assert!(both(&[]).is_schedulable());
    }

    #[test]
    fn single_task_schedulable_iff_wcet_fits_deadline() {
        assert!(both(&[view(3, 3, 10)]).is_schedulable());
        assert!(!both(&[view(4, 3, 10)]).is_schedulable());
    }

    #[test]
    fn implicit_deadline_full_utilization_is_schedulable() {
        // U = 1/2 + 1/2 = 1, implicit deadlines ⇒ schedulable.
        assert!(both(&[view(1, 2, 2), view(2, 4, 4)]).is_schedulable());
    }

    #[test]
    fn over_utilization_is_unschedulable() {
        let v = both(&[view(3, 4, 4), view(2, 4, 4)]);
        assert!(!v.is_schedulable());
    }

    #[test]
    fn constrained_deadlines_bite() {
        // Same WCETs fit with implicit deadlines but not with tight ones.
        assert!(both(&[view(2, 8, 8), view(2, 8, 8)]).is_schedulable());
        assert!(!both(&[view(2, 3, 8), view(2, 3, 8)]).is_schedulable());
    }

    #[test]
    fn witness_is_a_genuine_violation() {
        let tasks = [view(2, 3, 8), view(2, 3, 8)];
        match edf_exact(&tasks, DEFAULT_BUDGET).unwrap() {
            EdfVerdict::Unschedulable { witness } => {
                assert!(total_demand(&tasks, witness) > u128::from(witness.ticks()));
            }
            EdfVerdict::Schedulable => panic!("expected unschedulable"),
        }
    }

    #[test]
    fn classic_three_task_set() {
        // A standard schedulable constrained-deadline example.
        let tasks = [view(1, 3, 4), view(1, 5, 6), view(2, 9, 12)];
        assert!(both(&tasks).is_schedulable());
        // Tighten until it breaks: demand at t = 5 is 3 + 3 = 6 > 5.
        let tight = [view(3, 3, 6), view(3, 5, 10)];
        assert!(!both(&tight).is_schedulable());
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let tasks = [view(1, 2, 4), view(2, 6, 8), view(1, 10, 16)];
        assert!(matches!(
            edf_exact(&tasks, 1),
            Err(TestBudgetExceeded { budget: 1 })
        ));
    }

    #[test]
    fn horizon_for_low_utilization_is_small() {
        let tasks = [view(1, 4, 100)];
        // U = 1/100, slack term tiny ⇒ horizon ≈ D_max.
        assert_eq!(demand_horizon(&tasks), Duration::new(4));
    }

    #[test]
    fn horizon_for_full_utilization_is_hyperperiod_based() {
        let tasks = [view(2, 4, 4), view(3, 6, 6)];
        // U = 1 ⇒ lcm(4,6) + max D = 12 + 6.
        assert_eq!(demand_horizon(&tasks), Duration::new(18));
    }

    #[test]
    fn max_deadline_below_matches_bruteforce() {
        let tasks = [view(1, 3, 4), view(1, 5, 7)];
        for t in 1..60u64 {
            let expected = (0..t)
                .filter(|&d| {
                    tasks.iter().any(|task| {
                        d >= task.deadline.ticks()
                            && (d - task.deadline.ticks()) % task.period.ticks() == 0
                    })
                })
                .max()
                .map(Duration::new);
            assert_eq!(
                max_deadline_below(&tasks, Duration::new(t)),
                expected,
                "t = {t}"
            );
        }
    }

    #[test]
    fn utilization_test() {
        assert!(edf_utilization_test(&[view(1, 2, 2), view(1, 2, 2)]));
        assert!(!edf_utilization_test(&[view(2, 2, 2), view(1, 2, 2)]));
    }

    #[test]
    fn probed_variants_count_exact_dbf_evaluations() {
        let tasks = [view(1, 3, 4), view(1, 5, 6), view(2, 9, 12)];
        let mut probe = AnalysisProbe::default();
        let v = edf_qpa_probed(&tasks, DEFAULT_BUDGET, &mut probe).unwrap();
        assert!(v.is_schedulable());
        // Each QPA iteration evaluates one dbf per task.
        assert!(probe.dbf_exact_evals >= tasks.len() as u64);
        assert_eq!(probe.dbf_exact_evals % tasks.len() as u64, 0);

        let mut probe = AnalysisProbe::default();
        edf_exact_probed(&tasks, DEFAULT_BUDGET, &mut probe).unwrap();
        assert!(probe.dbf_exact_evals > 0);
        // The probe never changes the verdict.
        assert_eq!(
            edf_qpa(&tasks, DEFAULT_BUDGET).unwrap(),
            edf_exact(&tasks, DEFAULT_BUDGET).unwrap()
        );
    }

    #[test]
    fn error_display() {
        let e = TestBudgetExceeded { budget: 7 };
        assert!(e.to_string().contains("budget of 7"));
    }
}
