//! Demand bound functions for sporadic tasks.
//!
//! For the partitioning phase of FEDCONS, a low-density sporadic DAG task
//! `τ_i = (G_i, D_i, T_i)` is viewed as the three-parameter sporadic task
//! `(vol_i, D_i, T_i)` (paper Section IV-B): on a single processor its
//! internal parallelism cannot be exploited, so only its total work matters.
//!
//! * [`dbf`] — the exact demand bound function of Baruah, Mok & Rosier \[2\]:
//!   the maximum cumulative work with both release and deadline inside any
//!   window of length `t`.
//! * [`dbf_approx`] — the `DBF*` approximation (paper Eq. 1), linear beyond
//!   the first deadline, which the Baruah–Fisher partitioning test uses.

use fedsched_dag::rational::Rational;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;

/// The *demand view* of a task used by uniprocessor analysis: worst-case
/// execution time `C` (= `vol` for a DAG task), relative deadline `D` and
/// period `T`.
///
/// # Examples
///
/// ```
/// use fedsched_analysis::dbf::SequentialView;
/// use fedsched_dag::examples::paper_figure1;
/// use fedsched_dag::time::Duration;
///
/// let view = SequentialView::of(&paper_figure1());
/// assert_eq!(view.wcet, Duration::new(9));
/// assert_eq!(view.deadline, Duration::new(16));
/// assert_eq!(view.period, Duration::new(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SequentialView {
    /// Worst-case execution time per job (the DAG volume).
    pub wcet: Duration,
    /// Relative deadline.
    pub deadline: Duration,
    /// Minimum inter-arrival separation.
    pub period: Duration,
}

impl SequentialView {
    /// The sequential (three-parameter) view of a sporadic DAG task.
    #[must_use]
    pub fn of(task: &DagTask) -> SequentialView {
        SequentialView {
            wcet: task.volume(),
            deadline: task.deadline(),
            period: task.period(),
        }
    }

    /// Creates a view from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero (utilization would be undefined).
    #[must_use]
    pub fn new(wcet: Duration, deadline: Duration, period: Duration) -> SequentialView {
        assert!(!period.is_zero(), "period must be positive");
        SequentialView {
            wcet,
            deadline,
            period,
        }
    }

    /// Utilization `C / T`.
    #[must_use]
    pub fn utilization(&self) -> Rational {
        Rational::ratio(self.wcet, self.period)
    }

    /// Density `C / min(D, T)`.
    #[must_use]
    pub fn density(&self) -> Rational {
        Rational::ratio(self.wcet, self.deadline.min(self.period))
    }
}

impl From<&DagTask> for SequentialView {
    fn from(task: &DagTask) -> SequentialView {
        SequentialView::of(task)
    }
}

/// The exact demand bound function \[2\]:
///
/// ```text
/// dbf(τ, t) = max(0, ⌊(t − D)/T⌋ + 1) · C
/// ```
///
/// — the largest total work of jobs of `τ` that have both their release and
/// their deadline inside a window of length `t`.
///
/// # Examples
///
/// ```
/// use fedsched_analysis::dbf::{dbf, SequentialView};
/// use fedsched_dag::time::Duration;
///
/// let tau = SequentialView::new(Duration::new(2), Duration::new(5), Duration::new(10));
/// assert_eq!(dbf(&tau, Duration::new(4)), Duration::ZERO);   // t < D
/// assert_eq!(dbf(&tau, Duration::new(5)), Duration::new(2)); // one job fits
/// assert_eq!(dbf(&tau, Duration::new(14)), Duration::new(2));
/// assert_eq!(dbf(&tau, Duration::new(15)), Duration::new(4)); // two jobs fit
/// ```
#[must_use]
pub fn dbf(task: &SequentialView, t: Duration) -> Duration {
    if t < task.deadline {
        return Duration::ZERO;
    }
    let jobs = (t - task.deadline) / task.period + 1;
    task.wcet * jobs
}

/// The `DBF*` approximation to the demand bound function (paper Eq. 1):
///
/// ```text
/// DBF*(τ, t) = 0                      if t < D
///            = C + u·(t − D)          otherwise
/// ```
///
/// `DBF*` upper-bounds [`dbf`] everywhere and equals it at `t = D`; using it
/// in the first-fit test is what buys the polynomial-time partitioning with
/// the `(3 − 1/m)` speedup of the paper's Lemma 2.
///
/// Returned as an exact [`Rational`] because the slope `u` is fractional.
///
/// # Examples
///
/// ```
/// use fedsched_analysis::dbf::{dbf_approx, SequentialView};
/// use fedsched_dag::rational::Rational;
/// use fedsched_dag::time::Duration;
///
/// let tau = SequentialView::new(Duration::new(2), Duration::new(5), Duration::new(10));
/// assert_eq!(dbf_approx(&tau, Duration::new(4)), Rational::ZERO);
/// assert_eq!(dbf_approx(&tau, Duration::new(5)), Rational::from_integer(2));
/// // At t = 15: 2 + (2/10)·10 = 4.
/// assert_eq!(dbf_approx(&tau, Duration::new(15)), Rational::from_integer(4));
/// ```
#[must_use]
pub fn dbf_approx(task: &SequentialView, t: Duration) -> Rational {
    if t < task.deadline {
        return Rational::ZERO;
    }
    let elapsed = Rational::from((t - task.deadline).ticks());
    Rational::from(task.wcet.ticks()) + task.utilization() * elapsed
}

/// Total exact demand of a set of tasks in a window of length `t`.
#[must_use]
pub fn total_dbf(tasks: &[SequentialView], t: Duration) -> Duration {
    tasks.iter().map(|task| dbf(task, t)).sum()
}

/// Total approximate demand `Σ DBF*(τ_j, t)` of a set of tasks.
#[must_use]
pub fn total_dbf_approx(tasks: &[SequentialView], t: Duration) -> Rational {
    tasks.iter().map(|task| dbf_approx(task, t)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(c: u64, d: u64, t: u64) -> SequentialView {
        SequentialView::new(Duration::new(c), Duration::new(d), Duration::new(t))
    }

    #[test]
    fn dbf_step_structure() {
        let tau = view(3, 7, 10);
        assert_eq!(dbf(&tau, Duration::new(0)), Duration::ZERO);
        assert_eq!(dbf(&tau, Duration::new(6)), Duration::ZERO);
        assert_eq!(dbf(&tau, Duration::new(7)), Duration::new(3));
        assert_eq!(dbf(&tau, Duration::new(16)), Duration::new(3));
        assert_eq!(dbf(&tau, Duration::new(17)), Duration::new(6));
        assert_eq!(dbf(&tau, Duration::new(27)), Duration::new(9));
    }

    #[test]
    fn dbf_approx_dominates_exact() {
        let tau = view(3, 7, 10);
        for t in 0..100 {
            let t = Duration::new(t);
            let exact = Rational::from(dbf(&tau, t).ticks());
            assert!(
                dbf_approx(&tau, t) >= exact,
                "DBF* must dominate dbf at t={t}"
            );
        }
    }

    #[test]
    fn dbf_approx_tight_at_deadline_steps() {
        let tau = view(3, 7, 10);
        // Exactly equal at t = D and t = D + k·T.
        for k in 0..5u64 {
            let t = Duration::new(7 + 10 * k);
            assert_eq!(
                dbf_approx(&tau, t),
                Rational::from(dbf(&tau, t).ticks()),
                "k = {k}"
            );
        }
    }

    #[test]
    fn views_from_dag_task() {
        let t = fedsched_dag::examples::paper_figure1();
        let v: SequentialView = (&t).into();
        assert_eq!(v.utilization(), Rational::new(9, 20));
        assert_eq!(v.density(), Rational::new(9, 16));
    }

    #[test]
    fn totals_sum_over_tasks() {
        let a = view(1, 4, 8);
        let b = view(2, 6, 6);
        let t = Duration::new(12);
        assert_eq!(total_dbf(&[a, b], t), dbf(&a, t) + dbf(&b, t));
        assert_eq!(
            total_dbf_approx(&[a, b], t),
            dbf_approx(&a, t) + dbf_approx(&b, t)
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = view(1, 1, 0);
    }
}
