//! Worst-case response times under uniprocessor EDF (Spuri, 1996).
//!
//! The exact tests in [`crate::edf`] answer *whether* every deadline is met;
//! response-time analysis answers *by how much*: the largest completion
//! delay any job of a task can suffer. For preemptive EDF on one processor
//! the classic analysis of Spuri applies: the worst response time of task
//! `τ_i` occurs for some activation released `a` time units after the start
//! of a *deadline busy period* in which all other tasks release
//! synchronously and as fast as possible.
//!
//! For an activation of `τ_i` at offset `a`, only interference with
//! absolute deadlines at or before `a + D_i` matters. The completion time
//! fixpoint is
//!
//! ```text
//! t = (⌊a/T_i⌋ + 1)·C_i  +  Σ_{j≠i} min(⌈t/T_j⌉, n_j(a))·C_j
//! n_j(a) = max(0, 1 + ⌊(a + D_i − D_j)/T_j⌋)
//! ```
//!
//! and the response time of that activation is `t − a`. The candidate
//! offsets are the instants where interference steps change —
//! `a = k·T_j + D_j − D_i ≥ 0` for some `j` and `a = k·T_i` — up to the
//! length of the synchronous busy period.
//!
//! Everything is integer-exact. The result is a *sound upper bound* on the
//! worst response time (and Spuri's argument makes it tight for `U < 1`);
//! cross-validation against the exact EDF test and the discrete-event
//! simulator lives in this crate's test suites.

use fedsched_dag::rational::Rational;
use fedsched_dag::time::Duration;

use crate::dbf::SequentialView;
use crate::edf::TestBudgetExceeded;

/// Worst-case response times, indexed like the input task slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseTimes {
    values: Vec<Duration>,
}

impl ResponseTimes {
    /// The bound for the `i`-th input task.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn of(&self, i: usize) -> Duration {
        self.values[i]
    }

    /// All bounds, in input order.
    #[must_use]
    pub fn as_slice(&self) -> &[Duration] {
        &self.values
    }

    /// `true` iff every task's bound is within its relative deadline —
    /// equivalent to EDF schedulability of the set.
    #[must_use]
    pub fn all_within_deadlines(&self, tasks: &[SequentialView]) -> bool {
        self.values.iter().zip(tasks).all(|(r, t)| *r <= t.deadline)
    }
}

/// Length of the synchronous (level-∞) busy period: the least fixpoint of
/// `L = Σ_j ⌈L/T_j⌉·C_j`, the horizon inside which every worst-case
/// response time of every task occurs.
///
/// # Errors
///
/// Returns [`TestBudgetExceeded`] if the fixpoint iteration exceeds
/// `budget` steps (can only happen for `U ≥ 1`, where the busy period need
/// not be finite).
pub fn synchronous_busy_period(
    tasks: &[SequentialView],
    budget: usize,
) -> Result<Duration, TestBudgetExceeded> {
    let mut l: u64 = tasks.iter().map(|t| t.wcet.ticks()).sum();
    if l == 0 {
        return Ok(Duration::ZERO);
    }
    for _ in 0..budget {
        let next: u64 = tasks
            .iter()
            .map(|t| l.div_ceil(t.period.ticks()) * t.wcet.ticks())
            .sum();
        if next == l {
            return Ok(Duration::new(l));
        }
        l = next;
    }
    Err(TestBudgetExceeded { budget })
}

/// Computes Spuri worst-case response-time bounds for every task under
/// preemptive uniprocessor EDF.
///
/// `budget` caps both the busy-period fixpoint and the total number of
/// candidate offsets examined.
///
/// # Errors
///
/// Returns [`TestBudgetExceeded`] when `U ≥ 1` makes the busy period
/// diverge, or when the candidate set exceeds the budget.
///
/// # Examples
///
/// ```
/// use fedsched_analysis::dbf::SequentialView;
/// use fedsched_analysis::response_time::edf_response_times;
/// use fedsched_dag::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tasks = [
///     SequentialView::new(Duration::new(1), Duration::new(2), Duration::new(4)),
///     SequentialView::new(Duration::new(2), Duration::new(6), Duration::new(8)),
/// ];
/// let r = edf_response_times(&tasks, 1_000_000)?;
/// assert!(r.all_within_deadlines(&tasks));
/// // The short-deadline task can still be delayed by nothing (it always
/// // has the earliest deadline): WCRT = its own WCET.
/// assert_eq!(r.of(0), Duration::new(1));
/// # Ok(())
/// # }
/// ```
pub fn edf_response_times(
    tasks: &[SequentialView],
    budget: usize,
) -> Result<ResponseTimes, TestBudgetExceeded> {
    let n = tasks.len();
    if n == 0 {
        return Ok(ResponseTimes { values: Vec::new() });
    }
    let u: Rational = tasks.iter().map(SequentialView::utilization).sum();
    if u > Rational::ONE {
        // No finite bound exists; report budget exhaustion.
        return Err(TestBudgetExceeded { budget });
    }
    let horizon = synchronous_busy_period(tasks, budget)?.ticks();

    let mut values = Vec::with_capacity(n);
    let mut spent = 0usize;
    for (i, ti) in tasks.iter().enumerate() {
        // Candidate offsets: interference steps of every other task,
        // `a = k·T_j + D_j − D_i`, plus τ_i's own release instants `k·T_i`,
        // all within [0, horizon).
        let mut offsets: Vec<u64> = Vec::new();
        let mut k = 0u64;
        loop {
            let a = k * ti.period.ticks();
            if a >= horizon.max(1) {
                break;
            }
            offsets.push(a);
            k += 1;
        }
        for (j, tj) in tasks.iter().enumerate() {
            if j == i {
                continue;
            }
            let mut k = 0u64;
            loop {
                let step = k * tj.period.ticks() + tj.deadline.ticks();
                if step >= horizon.max(1) + ti.deadline.ticks() {
                    break;
                }
                // a = k·T_j + D_j − D_i, skipped while still negative.
                if let Some(a) = step.checked_sub(ti.deadline.ticks()) {
                    if a < horizon.max(1) {
                        offsets.push(a);
                    }
                }
                k += 1;
            }
        }
        offsets.sort_unstable();
        offsets.dedup();

        let mut worst = 0u64;
        for &a in &offsets {
            spent += 1;
            if spent > budget {
                return Err(TestBudgetExceeded { budget });
            }
            // Fixpoint for the completion time of τ_i's job released at a.
            let own = (a / ti.period.ticks() + 1) * ti.wcet.ticks();
            let mut t = own.max(1);
            loop {
                let mut demand = own;
                for (j, tj) in tasks.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    // Jobs of τ_j with deadline ≤ a + D_i.
                    let n_j = {
                        let cutoff = a + ti.deadline.ticks();
                        if cutoff < tj.deadline.ticks() {
                            0
                        } else {
                            (cutoff - tj.deadline.ticks()) / tj.period.ticks() + 1
                        }
                    };
                    let released = t.div_ceil(tj.period.ticks());
                    demand += released.min(n_j) * tj.wcet.ticks();
                }
                if demand == t {
                    break;
                }
                // U ≤ 1 and bounded interference make this converge; the
                // budget above still guards pathological inputs.
                t = demand;
                spent += 1;
                if spent > budget {
                    return Err(TestBudgetExceeded { budget });
                }
            }
            worst = worst.max(t.saturating_sub(a));
        }
        values.push(Duration::new(worst));
    }
    Ok(ResponseTimes { values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::{edf_exact, DEFAULT_BUDGET};

    fn view(c: u64, d: u64, t: u64) -> SequentialView {
        SequentialView::new(Duration::new(c), Duration::new(d), Duration::new(t))
    }

    #[test]
    fn single_task_wcrt_is_its_wcet() {
        let r = edf_response_times(&[view(3, 5, 10)], DEFAULT_BUDGET).unwrap();
        assert_eq!(r.of(0), Duration::new(3));
    }

    #[test]
    fn busy_period_examples() {
        // C=2,T=4 and C=3,T=6: L = 2+3=5 → ⌈5/4⌉·2+⌈5/6⌉·3 = 7 →
        // ⌈7/4⌉·2+⌈7/6⌉·3 = 10 → ⌈10/4⌉·2+⌈10/6⌉·3 = 12 → 12 = 3·2+2·3 ✓.
        let tasks = [view(2, 4, 4), view(3, 6, 6)];
        assert_eq!(
            synchronous_busy_period(&tasks, DEFAULT_BUDGET).unwrap(),
            Duration::new(12)
        );
        assert_eq!(
            synchronous_busy_period(&[], DEFAULT_BUDGET).unwrap(),
            Duration::ZERO
        );
    }

    #[test]
    fn wcrt_bounds_match_schedulability_verdict() {
        // Schedulable set: all bounds within deadlines.
        let ok = [view(1, 3, 4), view(1, 5, 6), view(2, 9, 12)];
        let r = edf_response_times(&ok, DEFAULT_BUDGET).unwrap();
        assert!(r.all_within_deadlines(&ok));
        assert!(edf_exact(&ok, DEFAULT_BUDGET).unwrap().is_schedulable());
        // Unschedulable set: some bound exceeds its deadline.
        let bad = [view(3, 3, 6), view(3, 5, 10)];
        let r = edf_response_times(&bad, DEFAULT_BUDGET).unwrap();
        assert!(!r.all_within_deadlines(&bad));
        assert!(!edf_exact(&bad, DEFAULT_BUDGET).unwrap().is_schedulable());
    }

    #[test]
    fn earliest_deadline_task_is_never_preempted() {
        // τ_0 always carries the earliest absolute deadline among
        // same-time releases; with D_0 ≤ D_j − T_j margins its WCRT is its
        // own WCET plus at most blocking-free interference from earlier
        // deadlines — here exactly C_0.
        let tasks = [view(1, 1, 8), view(4, 20, 20)];
        let r = edf_response_times(&tasks, DEFAULT_BUDGET).unwrap();
        assert_eq!(r.of(0), Duration::new(1));
        // The long task absorbs the short one's interference.
        assert!(r.of(1) >= Duration::new(4));
        assert!(r.of(1) <= Duration::new(20));
    }

    #[test]
    fn full_utilization_implicit_set() {
        // U = 1 with implicit deadlines: busy period equals the hyperperiod
        // and every bound lands exactly on its deadline in the worst case.
        let tasks = [view(2, 4, 4), view(3, 6, 6)];
        let r = edf_response_times(&tasks, DEFAULT_BUDGET).unwrap();
        assert!(r.all_within_deadlines(&tasks));
        // Known worst cases for this classic pair.
        assert!(r.of(0) >= Duration::new(2));
        assert!(r.of(1) >= Duration::new(5));
    }

    #[test]
    fn over_utilization_is_reported_as_budget_error() {
        let tasks = [view(3, 4, 4), view(2, 4, 4)];
        assert!(edf_response_times(&tasks, DEFAULT_BUDGET).is_err());
    }

    #[test]
    fn empty_set() {
        let r = edf_response_times(&[], DEFAULT_BUDGET).unwrap();
        assert!(r.as_slice().is_empty());
    }
}
