//! Uniprocessor demand-bound analysis and partitioning for sporadic tasks.
//!
//! The partitioning phase of FEDCONS (Baruah, DATE 2015, Fig. 4) reduces the
//! low-density sporadic DAG tasks to three-parameter sporadic tasks and
//! places them onto shared processors with the Baruah–Fisher first-fit test.
//! This crate supplies that machinery, plus the exact uniprocessor EDF
//! deciders used to cross-validate it:
//!
//! * [`mod@dbf`] — exact demand bound function and the `DBF*` approximation
//!   (paper Eq. 1);
//! * [`edf`] — exact processor-demand EDF tests (exhaustive and QPA);
//! * [`partition`] — deadline-ordered first-fit partitioning (paper Fig. 4,
//!   \[7\]);
//! * [`incremental`] — the per-processor partition state factored out of
//!   the batch partitioner, reusable by online admission control;
//! * [`response_time`] — Spuri worst-case response-time bounds under EDF,
//!   giving per-task slack rather than a bare yes/no;
//! * [`probe`] — the [`AnalysisProbe`] cost-counter
//!   sink threaded through the `*_probed` variants of every analysis, so
//!   each verdict ships with its analysis cost.
//!
//! # Examples
//!
//! ```
//! use fedsched_analysis::dbf::SequentialView;
//! use fedsched_analysis::partition::{partition_first_fit, PartitionConfig};
//! use fedsched_dag::system::TaskId;
//! use fedsched_dag::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tasks = vec![
//!     (TaskId::from_index(0), SequentialView::new(Duration::new(1), Duration::new(3), Duration::new(6))),
//!     (TaskId::from_index(1), SequentialView::new(Duration::new(2), Duration::new(5), Duration::new(10))),
//! ];
//! let partition = partition_first_fit(&tasks, 1, PartitionConfig::default())?;
//! assert_eq!(partition.used_processors(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod dbf;
pub mod edf;
pub mod incremental;
pub mod partition;
pub mod probe;
pub mod response_time;

pub use dbf::{dbf, dbf_approx, total_dbf, total_dbf_approx, SequentialView};
pub use edf::{
    edf_exact, edf_exact_probed, edf_qpa, edf_qpa_probed, EdfVerdict, TestBudgetExceeded,
    DEFAULT_BUDGET,
};
pub use incremental::{ProcessorState, SharedPool};
pub use partition::{
    partition_first_fit, partition_first_fit_probed, Partition, PartitionConfig, PartitionFailure,
    PartitionTest,
};
pub use probe::AnalysisProbe;
pub use response_time::{edf_response_times, synchronous_busy_period, ResponseTimes};
