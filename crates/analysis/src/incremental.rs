//! Incremental per-processor partition state for online admission.
//!
//! [`partition_first_fit`](crate::partition::partition_first_fit) answers
//! the *batch* question: given all low-density tasks up front, does the
//! deadline-ordered first-fit place every one of them? An online admission
//! server has to answer the same question one task at a time, against a
//! shared-processor bank whose resident sets evolve as tasks come and go.
//!
//! This module factors the per-processor bookkeeping out of the batch
//! partitioner into two reusable pieces:
//!
//! * [`ProcessorState`] — one shared processor's resident task views plus
//!   its cached utilization sum, with the same admission condition
//!   ([`fits`](crate::partition::fits)) the batch partitioner applies;
//! * [`SharedPool`] — an ordered bank of [`ProcessorState`]s with the
//!   first-fit placement rule over it.
//!
//! The batch partitioner is itself implemented on top of [`SharedPool`], so
//! an incremental caller that replays placements through this module is
//! guaranteed to apply bit-for-bit the same admission test as a batch
//! re-analysis — the property the `fedsched-service` consistency oracle
//! checks end to end.

use fedsched_dag::rational::Rational;

use crate::dbf::SequentialView;
use crate::partition::{fits_probed, PartitionConfig};
use crate::probe::AnalysisProbe;

/// One shared processor: the sequential views resident on it and their
/// cached utilization sum (the quantity the Baruah–Fisher test needs in
/// addition to the `DBF*` demand).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessorState {
    resident: Vec<SequentialView>,
    utilization: Rational,
}

impl ProcessorState {
    /// An empty processor.
    #[must_use]
    pub fn new() -> ProcessorState {
        ProcessorState::default()
    }

    /// The views currently resident, in placement order.
    #[must_use]
    pub fn resident(&self) -> &[SequentialView] {
        &self.resident
    }

    /// Cached sum of the resident utilizations.
    #[must_use]
    pub fn utilization(&self) -> Rational {
        self.utilization
    }

    /// Number of resident tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether no task is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Whether `candidate` passes the configured admission test against the
    /// current resident set — exactly [`fits`](crate::partition::fits).
    #[must_use]
    pub fn can_accept(&self, candidate: &SequentialView, config: PartitionConfig) -> bool {
        let mut scratch = AnalysisProbe::default();
        self.can_accept_probed(candidate, config, &mut scratch)
    }

    /// [`Self::can_accept`] with cost accounting — exactly
    /// [`fits_probed`].
    #[must_use]
    pub fn can_accept_probed(
        &self,
        candidate: &SequentialView,
        config: PartitionConfig,
        probe: &mut AnalysisProbe,
    ) -> bool {
        fits_probed(&self.resident, self.utilization, candidate, config, probe)
    }

    /// Places `view` unconditionally (callers check [`Self::can_accept`]
    /// first when re-validating; replay of known-good placements skips it).
    pub fn place(&mut self, view: SequentialView) {
        self.utilization += view.utilization();
        self.resident.push(view);
    }

    /// Removes the first resident view equal to `view`; returns whether one
    /// was present. Removal never invalidates the remaining placements: each
    /// admission test is monotone in the resident set (both the `DBF*` sum
    /// and the utilization sum only shrink).
    pub fn remove(&mut self, view: &SequentialView) -> bool {
        match self.resident.iter().position(|r| r == view) {
            Some(i) => {
                self.resident.remove(i);
                self.utilization = self.utilization - view.utilization();
                true
            }
            None => false,
        }
    }
}

/// An ordered bank of shared processors with first-fit placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPool {
    processors: Vec<ProcessorState>,
    config: PartitionConfig,
}

impl SharedPool {
    /// An empty pool of `processors` processors applying `config`.
    #[must_use]
    pub fn new(processors: usize, config: PartitionConfig) -> SharedPool {
        SharedPool {
            processors: vec![ProcessorState::new(); processors],
            config,
        }
    }

    /// Number of processors in the pool (occupied or not).
    #[must_use]
    pub fn processor_count(&self) -> usize {
        self.processors.len()
    }

    /// The state of processor `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn processor(&self, k: usize) -> &ProcessorState {
        &self.processors[k]
    }

    /// The admission test configuration this pool applies.
    #[must_use]
    pub fn config(&self) -> PartitionConfig {
        self.config
    }

    /// The first processor (lowest index) that accepts `candidate`, without
    /// placing it.
    #[must_use]
    pub fn first_fit(&self, candidate: &SequentialView) -> Option<usize> {
        let mut scratch = AnalysisProbe::default();
        self.first_fit_probed(candidate, &mut scratch)
    }

    /// [`Self::first_fit`] with cost accounting: every admission test tried
    /// along the scan is recorded in `probe`.
    #[must_use]
    pub fn first_fit_probed(
        &self,
        candidate: &SequentialView,
        probe: &mut AnalysisProbe,
    ) -> Option<usize> {
        self.processors
            .iter()
            .position(|p| p.can_accept_probed(candidate, self.config, probe))
    }

    /// First-fit placement: finds the first accepting processor, places the
    /// view there, and returns its index — or `None` (and no change) if the
    /// view fits nowhere.
    pub fn try_place(&mut self, candidate: SequentialView) -> Option<usize> {
        let mut scratch = AnalysisProbe::default();
        self.try_place_probed(candidate, &mut scratch)
    }

    /// [`Self::try_place`] with cost accounting (see
    /// [`Self::first_fit_probed`]).
    pub fn try_place_probed(
        &mut self,
        candidate: SequentialView,
        probe: &mut AnalysisProbe,
    ) -> Option<usize> {
        let k = self.first_fit_probed(&candidate, probe)?;
        self.processors[k].place(candidate);
        Some(k)
    }

    /// Places `view` on processor `k` unconditionally (replaying a
    /// placement already known to be valid).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn place(&mut self, k: usize, view: SequentialView) {
        self.processors[k].place(view);
    }

    /// Removes one occurrence of `view` from processor `k`; returns whether
    /// it was present.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn remove(&mut self, k: usize, view: &SequentialView) -> bool {
        self.processors[k].remove(view)
    }

    /// Total number of resident tasks across the pool.
    #[must_use]
    pub fn resident_tasks(&self) -> usize {
        self.processors.iter().map(ProcessorState::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_dag::time::Duration;

    fn view(c: u64, d: u64, t: u64) -> SequentialView {
        SequentialView::new(Duration::new(c), Duration::new(d), Duration::new(t))
    }

    #[test]
    fn processor_state_tracks_utilization() {
        let mut p = ProcessorState::new();
        assert!(p.is_empty());
        p.place(view(2, 4, 8));
        p.place(view(1, 3, 6));
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.utilization(),
            view(2, 4, 8).utilization() + view(1, 3, 6).utilization()
        );
        assert!(p.remove(&view(2, 4, 8)));
        assert!(!p.remove(&view(2, 4, 8)));
        assert_eq!(p.utilization(), view(1, 3, 6).utilization());
    }

    #[test]
    fn can_accept_matches_batch_fits() {
        let config = PartitionConfig::default();
        let mut p = ProcessorState::new();
        p.place(view(2, 5, 10));
        let cand = view(1, 7, 14);
        assert_eq!(
            p.can_accept(&cand, config),
            crate::partition::fits(p.resident(), p.utilization(), &cand, config)
        );
    }

    #[test]
    fn pool_first_fit_prefers_earlier_processors() {
        let mut pool = SharedPool::new(3, PartitionConfig::default());
        assert_eq!(pool.try_place(view(1, 8, 16)), Some(0));
        assert_eq!(pool.try_place(view(1, 9, 18)), Some(0));
        assert_eq!(pool.resident_tasks(), 2);
    }

    #[test]
    fn pool_spills_and_fails_like_the_batch_partitioner() {
        let mut pool = SharedPool::new(2, PartitionConfig::default());
        // Each view demands its whole deadline: one per processor.
        assert_eq!(pool.try_place(view(4, 4, 8)), Some(0));
        assert_eq!(pool.try_place(view(4, 4, 8)), Some(1));
        assert_eq!(pool.try_place(view(4, 4, 8)), None);
        assert_eq!(pool.resident_tasks(), 2, "failed placement must not mutate");
    }

    #[test]
    fn removal_frees_capacity() {
        let mut pool = SharedPool::new(1, PartitionConfig::default());
        let v = view(4, 4, 8);
        assert_eq!(pool.try_place(v), Some(0));
        assert_eq!(pool.try_place(v), None);
        assert!(pool.remove(0, &v));
        assert_eq!(pool.try_place(v), Some(0));
    }
}
