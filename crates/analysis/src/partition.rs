//! The partitioning phase of FEDCONS: Baruah–Fisher first-fit by deadline
//! (paper Fig. 4, derived from \[7\]).
//!
//! Low-density DAG tasks are treated as sequential three-parameter sporadic
//! tasks (`vol_i, D_i, T_i`) and placed one by one, in order of
//! non-decreasing relative deadline, onto the first shared processor where
//! the approximate demand fits:
//!
//! ```text
//! D_i − Σ_{τ_j ∈ τ(k)} DBF*(τ_j, D_i)  ≥  vol_i
//! ```
//!
//! The underlying correctness argument ([7, Corollary 1]) additionally
//! requires the *utilization* condition `u_i ≤ 1 − Σ_{τ_j ∈ τ(k)} u_j` on
//! the chosen processor: `DBF*` is linear beyond each deadline, so the
//! demand condition evaluated at `D_i` only covers later check-points when
//! the slopes sum to at most one. The paper's Fig. 4 elides that condition;
//! [`PartitionConfig::utilization_check`] (default **on**) restores it, and
//! can be disabled to study the literal pseudocode.
//!
//! The guarantee reproduced in experiment E6: if *any* partitioning of the
//! tasks onto `m` unit-speed processors is feasible, this first-fit succeeds
//! on `m` processors that are `(3 − 1/m)` times as fast (paper Lemma 2).

use core::fmt;

use fedsched_dag::rational::Rational;
use fedsched_dag::system::TaskId;
use fedsched_dag::time::Duration;
use serde::{Deserialize, Serialize};

use crate::dbf::{dbf_approx, SequentialView};
use crate::edf::edf_qpa_probed;
use crate::incremental::SharedPool;
use crate::probe::AnalysisProbe;

/// The per-processor admission test the first-fit partitioner applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionTest {
    /// The paper's test (Fig. 4): approximate demand `DBF*` evaluated at
    /// the candidate's deadline. Polynomial time; carries the `(3 − 1/m)`
    /// speedup guarantee of Lemma 2.
    #[default]
    ApproxDbf,
    /// The *exact* EDF processor-demand criterion (via QPA) on
    /// `resident ∪ {candidate}`. Pseudo-polynomial; admits everything the
    /// approximate test admits per processor, and quantifies how much
    /// acceptance `DBF*` leaves on the table (ablation experiment E10).
    /// If the exact test exhausts `budget` the candidate is conservatively
    /// rejected.
    ExactEdf {
        /// Test-point budget handed to QPA per probe.
        budget: usize,
    },
}

/// Options for the first-fit partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Also require `Σ u_j + u_i ≤ 1` on the receiving processor (the
    /// condition of [7, Corollary 1] that Fig. 4 leaves implicit).
    /// Disabling this reproduces the paper's literal pseudocode but can
    /// admit partitions whose processors are over-utilized. Only consulted
    /// by [`PartitionTest::ApproxDbf`] (the exact test subsumes it).
    pub utilization_check: bool,
    /// Which admission test gates each placement.
    pub test: PartitionTest,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            utilization_check: true,
            test: PartitionTest::ApproxDbf,
        }
    }
}

impl PartitionConfig {
    /// The paper's configuration (Fig. 4 + the \[7\] utilization condition).
    #[must_use]
    pub fn approx() -> PartitionConfig {
        PartitionConfig::default()
    }

    /// Exact-EDF admission with the given QPA budget (ablation E10).
    #[must_use]
    pub fn exact(budget: usize) -> PartitionConfig {
        PartitionConfig {
            utilization_check: true,
            test: PartitionTest::ExactEdf { budget },
        }
    }
}

/// A successful partition: which tasks went to which shared processor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    assignment: Vec<Vec<TaskId>>,
}

impl Partition {
    /// Number of shared processors the partition was built for.
    #[must_use]
    pub fn processor_count(&self) -> usize {
        self.assignment.len()
    }

    /// The tasks assigned to processor `k`, in assignment order.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn tasks_on(&self, k: usize) -> &[TaskId] {
        &self.assignment[k]
    }

    /// Iterator over `(processor, tasks)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (usize, &[TaskId])> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .map(|(k, v)| (k, v.as_slice()))
    }

    /// The processor a task was assigned to, if any.
    #[must_use]
    pub fn processor_of(&self, task: TaskId) -> Option<usize> {
        self.assignment
            .iter()
            .position(|tasks| tasks.contains(&task))
    }

    /// Number of processors that received at least one task.
    #[must_use]
    pub fn used_processors(&self) -> usize {
        self.assignment.iter().filter(|v| !v.is_empty()).count()
    }
}

/// Failure of the first-fit partitioner: a task fit on no processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionFailure {
    /// The first task that could not be placed.
    pub task: TaskId,
    /// Number of shared processors that were available.
    pub processors: usize,
}

impl fmt::Display for PartitionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} fits on none of the {} shared processors",
            self.task, self.processors
        )
    }
}

impl std::error::Error for PartitionFailure {}

/// Partitions the given tasks onto `processors` shared processors with the
/// Baruah–Fisher deadline-ordered first-fit (paper Fig. 4).
///
/// `tasks` pairs each [`TaskId`] with its sequential demand view; ids are
/// opaque to the algorithm and returned unchanged in the [`Partition`].
/// Callers pass the low-density subset of their system here (FEDCONS does).
///
/// # Errors
///
/// Returns [`PartitionFailure`] naming the first task that fits nowhere.
/// With zero processors, any non-empty input fails on its first task.
///
/// # Examples
///
/// ```
/// use fedsched_analysis::dbf::SequentialView;
/// use fedsched_analysis::partition::{partition_first_fit, PartitionConfig};
/// use fedsched_dag::system::TaskId;
/// use fedsched_dag::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tasks = vec![
///     (TaskId::from_index(0), SequentialView::new(Duration::new(2), Duration::new(4), Duration::new(8))),
///     (TaskId::from_index(1), SequentialView::new(Duration::new(3), Duration::new(6), Duration::new(6))),
/// ];
/// let p = partition_first_fit(&tasks, 2, PartitionConfig::default())?;
/// assert_eq!(p.processor_count(), 2);
/// assert!(p.processor_of(TaskId::from_index(0)).is_some());
/// # Ok(())
/// # }
/// ```
pub fn partition_first_fit(
    tasks: &[(TaskId, SequentialView)],
    processors: usize,
    config: PartitionConfig,
) -> Result<Partition, PartitionFailure> {
    let mut scratch = AnalysisProbe::default();
    partition_first_fit_probed(tasks, processors, config, &mut scratch)
}

/// [`partition_first_fit`] with cost accounting: every first-fit admission
/// test performed along the way is recorded in `probe` (see
/// [`fits_probed`]).
///
/// # Errors
///
/// Same as [`partition_first_fit`].
pub fn partition_first_fit_probed(
    tasks: &[(TaskId, SequentialView)],
    processors: usize,
    config: PartitionConfig,
    probe: &mut AnalysisProbe,
) -> Result<Partition, PartitionFailure> {
    // "Without loss of generality, assume that D_i ≤ D_{i+1}": sort by
    // non-decreasing relative deadline (ties by id for determinism).
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (tasks[i].1.deadline, tasks[i].0));

    let mut assignment: Vec<Vec<TaskId>> = vec![Vec::new(); processors];
    let mut pool = SharedPool::new(processors, config);

    for &i in &order {
        let (id, view) = tasks[i];
        match pool.try_place_probed(view, probe) {
            Some(k) => assignment[k].push(id),
            None => {
                return Err(PartitionFailure {
                    task: id,
                    processors,
                })
            }
        }
    }
    Ok(Partition { assignment })
}

/// The admission condition for adding `candidate` to a processor that
/// already hosts `resident` tasks (with total utilization
/// `resident_utilization`), under the configured [`PartitionTest`].
#[must_use]
pub fn fits(
    resident: &[SequentialView],
    resident_utilization: Rational,
    candidate: &SequentialView,
    config: PartitionConfig,
) -> bool {
    let mut scratch = AnalysisProbe::default();
    fits_probed(
        resident,
        resident_utilization,
        candidate,
        config,
        &mut scratch,
    )
}

/// [`fits`] with cost accounting: records one `fits()` call, plus one
/// `DBF*` evaluation per resident task ([`PartitionTest::ApproxDbf`]) or
/// the exact-`dbf` evaluations of the QPA run
/// ([`PartitionTest::ExactEdf`]).
#[must_use]
pub fn fits_probed(
    resident: &[SequentialView],
    resident_utilization: Rational,
    candidate: &SequentialView,
    config: PartitionConfig,
    probe: &mut AnalysisProbe,
) -> bool {
    probe.fits_calls = probe.fits_calls.saturating_add(1);
    match config.test {
        PartitionTest::ApproxDbf => {
            let d = candidate.deadline;
            probe.dbf_approx_evals = probe.dbf_approx_evals.saturating_add(resident.len() as u64);
            let demand_at_d: Rational = resident.iter().map(|r| dbf_approx(r, d)).sum();
            let slack = Rational::from(d.ticks()) - demand_at_d;
            if slack < Rational::from(candidate.wcet.ticks()) {
                return false;
            }
            if config.utilization_check
                && resident_utilization + candidate.utilization() > Rational::ONE
            {
                return false;
            }
            true
        }
        PartitionTest::ExactEdf { budget } => {
            let mut with: Vec<SequentialView> = resident.to_vec();
            with.push(*candidate);
            matches!(
                edf_qpa_probed(&with, budget, probe),
                Ok(crate::edf::EdfVerdict::Schedulable)
            )
        }
    }
}

/// Convenience: the demand slack `D − Σ DBF*(τ_j, D)` a processor offers a
/// deadline `D`, exposed for diagnostics and experiments.
#[must_use]
pub fn slack_at(resident: &[SequentialView], d: Duration) -> Rational {
    let demand: Rational = resident.iter().map(|r| dbf_approx(r, d)).sum();
    Rational::from(d.ticks()) - demand
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::{edf_qpa, DEFAULT_BUDGET};

    fn view(c: u64, d: u64, t: u64) -> SequentialView {
        SequentialView::new(Duration::new(c), Duration::new(d), Duration::new(t))
    }

    fn tasks(views: &[SequentialView]) -> Vec<(TaskId, SequentialView)> {
        views
            .iter()
            .enumerate()
            .map(|(i, &v)| (TaskId::from_index(i), v))
            .collect()
    }

    #[test]
    fn single_task_single_processor() {
        let p =
            partition_first_fit(&tasks(&[view(2, 4, 8)]), 1, PartitionConfig::default()).unwrap();
        assert_eq!(p.tasks_on(0), &[TaskId::from_index(0)]);
        assert_eq!(p.used_processors(), 1);
    }

    #[test]
    fn empty_input_succeeds_even_with_zero_processors() {
        let p = partition_first_fit(&[], 0, PartitionConfig::default()).unwrap();
        assert_eq!(p.processor_count(), 0);
    }

    #[test]
    fn zero_processors_fail_nonempty() {
        let e = partition_first_fit(&tasks(&[view(1, 2, 4)]), 0, PartitionConfig::default())
            .unwrap_err();
        assert_eq!(e.processors, 0);
        assert!(e.to_string().contains("none of the 0"));
    }

    #[test]
    fn overloads_spill_to_next_processor() {
        // Each task demands its whole deadline: one per processor.
        let vs = [view(4, 4, 8), view(4, 4, 8)];
        let p = partition_first_fit(&tasks(&vs), 2, PartitionConfig::default()).unwrap();
        assert_eq!(p.used_processors(), 2);
        assert_ne!(
            p.processor_of(TaskId::from_index(0)),
            p.processor_of(TaskId::from_index(1))
        );
    }

    #[test]
    fn failure_when_all_processors_full() {
        let vs = [view(4, 4, 8), view(4, 4, 8), view(4, 4, 8)];
        let e = partition_first_fit(&tasks(&vs), 2, PartitionConfig::default()).unwrap_err();
        assert_eq!(e.processors, 2);
    }

    #[test]
    fn deadline_order_is_respected() {
        // The tight-deadline task must be considered first even though it
        // has a later id.
        let vs = [view(3, 10, 10), view(3, 3, 10)];
        let p = partition_first_fit(&tasks(&vs), 1, PartitionConfig::default()).unwrap();
        // Both fit on one processor: demand at D=3 is 0 from the other task
        // when placed first... The point: placement succeeds.
        assert_eq!(p.tasks_on(0).len(), 2);
        // Deadline order puts task 1 (D=3) first in the assignment list.
        assert_eq!(p.tasks_on(0)[0], TaskId::from_index(1));
    }

    #[test]
    fn utilization_check_rejects_over_utilized_processor() {
        // Demand at D fits, but long-run utilization exceeds 1.
        // τ_a: C=1, D=1, T=2 (u=1/2); τ_b: C=5, D=9, T=8 (u=5/8).
        // DBF*(a, 9) = 1 + (1/2)·8 = 5; slack = 9 − 5 = 4 ≥ 5? No (4 < 5) —
        // pick something where demand passes: τ_b: C=3, D=9, T=4 (u=3/4):
        // DBF*(a,9) = 5, slack 4 ≥ 3 ✓ but u sum = 1/2 + 3/4 > 1.
        let a = view(1, 1, 2);
        let b = view(3, 9, 4);
        let with = PartitionConfig::default();
        let without = PartitionConfig {
            utilization_check: false,
            ..PartitionConfig::default()
        };
        assert!(!fits(&[a], a.utilization(), &b, with));
        assert!(fits(&[a], a.utilization(), &b, without));
        // And the literal-pseudocode partition is indeed EDF-infeasible.
        let verdict = edf_qpa(&[a, b], DEFAULT_BUDGET).unwrap();
        assert!(!verdict.is_schedulable());
    }

    #[test]
    fn accepted_partitions_are_edf_schedulable() {
        // Every processor of a default-config partition must pass the exact
        // EDF test — the sufficiency the DBF* test promises.
        let vs = [
            view(2, 5, 10),
            view(1, 3, 6),
            view(4, 9, 18),
            view(2, 7, 14),
            view(3, 11, 11),
        ];
        let ts = tasks(&vs);
        let p = partition_first_fit(&ts, 2, PartitionConfig::default()).unwrap();
        for (_, ids) in p.iter() {
            let proc_views: Vec<SequentialView> = ids.iter().map(|id| vs[id.index()]).collect();
            assert!(edf_qpa(&proc_views, DEFAULT_BUDGET)
                .unwrap()
                .is_schedulable());
        }
    }

    #[test]
    fn slack_diagnostics() {
        let a = view(2, 4, 8);
        assert_eq!(slack_at(&[a], Duration::new(3)), Rational::from_integer(3));
        assert_eq!(slack_at(&[a], Duration::new(4)), Rational::from_integer(2));
        // At t = 8: 8 − (2 + (1/4)·4) = 5.
        assert_eq!(slack_at(&[a], Duration::new(8)), Rational::from_integer(5));
    }

    #[test]
    fn probe_counts_fits_and_dbf_star_evaluations() {
        let vs = [view(1, 8, 16), view(1, 9, 18)];
        let mut probe = AnalysisProbe::default();
        let p = partition_first_fit_probed(&tasks(&vs), 3, PartitionConfig::default(), &mut probe)
            .unwrap();
        assert_eq!(p.used_processors(), 1);
        // First task: 1 fits() call on an empty processor (0 DBF* evals);
        // second task: 1 fits() call against 1 resident (1 DBF* eval).
        assert_eq!(probe.fits_calls, 2);
        assert_eq!(probe.dbf_approx_evals, 1);
        // The probed run places identically to the unprobed one.
        assert_eq!(
            p,
            partition_first_fit(&tasks(&vs), 3, PartitionConfig::default()).unwrap()
        );
    }

    #[test]
    fn first_fit_prefers_earlier_processors() {
        let vs = [view(1, 8, 16), view(1, 9, 18)];
        let p = partition_first_fit(&tasks(&vs), 3, PartitionConfig::default()).unwrap();
        assert_eq!(p.tasks_on(0).len(), 2);
        assert_eq!(p.used_processors(), 1);
    }
}

#[cfg(test)]
mod exact_test_tests {
    use super::*;
    use crate::edf::{edf_qpa, DEFAULT_BUDGET};
    use fedsched_dag::time::Duration;

    fn view(c: u64, d: u64, t: u64) -> SequentialView {
        SequentialView::new(Duration::new(c), Duration::new(d), Duration::new(t))
    }

    fn tasks(views: &[SequentialView]) -> Vec<(TaskId, SequentialView)> {
        views
            .iter()
            .enumerate()
            .map(|(i, &v)| (TaskId::from_index(i), v))
            .collect()
    }

    #[test]
    fn exact_admits_everything_approx_admits_per_processor() {
        // Per-processor containment: any placement the DBF* test accepts is
        // EDF-schedulable, so the exact test accepts it too.
        let resident = [view(2, 5, 10), view(1, 3, 6)];
        let u: Rational = resident.iter().map(SequentialView::utilization).sum();
        for cand in [view(1, 7, 14), view(2, 9, 9), view(3, 11, 22)] {
            if fits(&resident, u, &cand, PartitionConfig::approx()) {
                assert!(
                    fits(&resident, u, &cand, PartitionConfig::exact(DEFAULT_BUDGET)),
                    "exact test rejected an approx-admitted candidate {cand:?}"
                );
            }
        }
    }

    #[test]
    fn exact_admits_strictly_more_somewhere() {
        // DBF* over-approximates demand between deadline steps: find a
        // placement the approximate test rejects but exact EDF accepts.
        // τ_a = (3, 4, 10): DBF*(a, 8) = 3 + 0.3·4 = 4.2; candidate
        // (4, 8, 16): slack 8 − 4.2 = 3.8 < 4 ⇒ approx rejects. Exact
        // demand at 8 is only 3 ⇒ EDF fits (check: dbf(a,4)=3≤4 ✓,
        // dbf at 8: 3+4=7 ≤ 8 ✓ ...).
        let resident = [view(3, 4, 10)];
        let u = resident[0].utilization();
        let cand = view(4, 8, 16);
        assert!(!fits(&resident, u, &cand, PartitionConfig::approx()));
        assert!(fits(
            &resident,
            u,
            &cand,
            PartitionConfig::exact(DEFAULT_BUDGET)
        ));
        // ... and the exact verdict is genuine.
        let both = [resident[0], cand];
        assert!(edf_qpa(&both, DEFAULT_BUDGET).unwrap().is_schedulable());
    }

    #[test]
    fn exact_partitions_are_edf_schedulable() {
        let vs = [
            view(3, 4, 10),
            view(4, 8, 16),
            view(2, 6, 12),
            view(5, 16, 16),
        ];
        let p =
            partition_first_fit(&tasks(&vs), 2, PartitionConfig::exact(DEFAULT_BUDGET)).unwrap();
        for (_, ids) in p.iter() {
            let views: Vec<SequentialView> = ids.iter().map(|id| vs[id.index()]).collect();
            assert!(edf_qpa(&views, DEFAULT_BUDGET).unwrap().is_schedulable());
        }
    }

    #[test]
    fn exact_with_tiny_budget_rejects_conservatively() {
        // Budget exhaustion must never admit.
        let resident = [view(1, 3, 7), view(2, 9, 13)];
        let u: Rational = resident.iter().map(SequentialView::utilization).sum();
        let cand = view(1, 20, 29);
        assert!(!fits(&resident, u, &cand, PartitionConfig::exact(1)));
    }

    #[test]
    fn config_constructors() {
        assert_eq!(PartitionConfig::approx(), PartitionConfig::default());
        assert_eq!(
            PartitionConfig::exact(42).test,
            PartitionTest::ExactEdf { budget: 42 }
        );
        assert_eq!(PartitionTest::default(), PartitionTest::ApproxDbf);
    }
}
