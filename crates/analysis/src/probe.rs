//! [`AnalysisProbe`] — an instrumentation sink threaded through every
//! schedulability analysis in the workspace.
//!
//! Every probed entry point (`MINPROCS`, `FEDCONS`, first-fit
//! partitioning, the exact-EDF tests, the admission service's template
//! cache) takes a `&mut AnalysisProbe` and *adds* to its counters, so one
//! probe can accumulate the cost of an arbitrary sequence of analyses —
//! a whole experiment sweep, or the lifetime of an admission server. The
//! uninstrumented entry points are thin wrappers that discard a scratch
//! probe; they run the identical code path, so instrumentation can never
//! change an analysis verdict.
//!
//! Counters are deliberately plain public `u64` fields: the probe is a
//! record, not an abstraction, and its serde form is the stable surface
//! reported by the CLI (`analyze --json`), the admission server's `Stats`
//! response, and the experiment CSVs.

use core::fmt;
use core::ops::AddAssign;

use serde::{Deserialize, Serialize};

/// Cost counters for one or more schedulability analyses.
///
/// All counters are cumulative; [`AnalysisProbe::merge`] (or `+=`) folds
/// one probe into another, so per-operation probes can be aggregated into
/// a long-lived one.
///
/// # Examples
///
/// ```
/// use fedsched_analysis::probe::AnalysisProbe;
///
/// let mut total = AnalysisProbe::default();
/// let mut op = AnalysisProbe::default();
/// op.ls_runs = 3;
/// op.fits_calls = 1;
/// total.merge(&op);
/// total.merge(&op);
/// assert_eq!(total.ls_runs, 6);
/// assert_eq!(total.fits_calls, 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisProbe {
    /// Graham List-Scheduling simulations run (one per candidate processor
    /// count tried by `MINPROCS`, one per cluster sized by Li's algorithm).
    pub ls_runs: u64,
    /// Makespan-versus-deadline evaluations of an LS template.
    pub makespan_evaluations: u64,
    /// Candidate cluster sizes `μ` eliminated from a `MINPROCS` search by
    /// Graham's bounds (`makespan_lower_bound` / `graham_upper_bound`)
    /// without running List Scheduling on them.
    pub ls_runs_pruned: u64,
    /// Work items offered to the parallel fan-out layer (`MINPROCS` wave
    /// candidates, FEDCONS phase-1 sizings, experiment trials). Counted
    /// identically at every pool width — including width 1, where the items
    /// run inline — so the counter is part of the determinism contract.
    pub par_tasks_dispatched: u64,
    /// Approximate demand-bound (`DBF*`) evaluations, one per resident
    /// task per first-fit admission test.
    pub dbf_approx_evals: u64,
    /// Exact `dbf` evaluations performed by the exact-EDF tests (QPA and
    /// the exhaustive deadline walk).
    pub dbf_exact_evals: u64,
    /// First-fit admission tests (`fits()` calls): candidate-task versus
    /// resident-set checks, approximate or exact.
    pub fits_calls: u64,
    /// Template-cache hits (admission service only).
    pub cache_hits: u64,
    /// Template-cache misses (admission service only).
    pub cache_misses: u64,
    /// Wall time spent sizing dedicated clusters (FEDCONS phase 1 /
    /// `MINPROCS`), in nanoseconds.
    pub sizing_nanos: u64,
    /// Wall time spent partitioning low-density tasks (FEDCONS phase 2 /
    /// first-fit), in nanoseconds.
    pub partition_nanos: u64,
    /// Total wall time of the analysis as observed by the policy layer,
    /// in nanoseconds (covers verdict-only tests that have no phases).
    pub wall_nanos: u64,
}

impl AnalysisProbe {
    /// A zeroed probe.
    #[must_use]
    pub fn new() -> AnalysisProbe {
        AnalysisProbe::default()
    }

    /// Adds every counter of `other` into `self`, saturating at
    /// [`u64::MAX`]: a platform-lifetime probe accumulating per-operation
    /// probes for months must pin at the ceiling rather than silently wrap
    /// back toward zero (a wrapped counter reads as a healthy small value
    /// on a metrics dashboard — strictly worse than a saturated one).
    pub fn merge(&mut self, other: &AnalysisProbe) {
        self.ls_runs = self.ls_runs.saturating_add(other.ls_runs);
        self.makespan_evaluations = self
            .makespan_evaluations
            .saturating_add(other.makespan_evaluations);
        self.ls_runs_pruned = self.ls_runs_pruned.saturating_add(other.ls_runs_pruned);
        self.par_tasks_dispatched = self
            .par_tasks_dispatched
            .saturating_add(other.par_tasks_dispatched);
        self.dbf_approx_evals = self.dbf_approx_evals.saturating_add(other.dbf_approx_evals);
        self.dbf_exact_evals = self.dbf_exact_evals.saturating_add(other.dbf_exact_evals);
        self.fits_calls = self.fits_calls.saturating_add(other.fits_calls);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.sizing_nanos = self.sizing_nanos.saturating_add(other.sizing_nanos);
        self.partition_nanos = self.partition_nanos.saturating_add(other.partition_nanos);
        self.wall_nanos = self.wall_nanos.saturating_add(other.wall_nanos);
    }

    /// `true` if every counter is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == AnalysisProbe::default()
    }

    /// A copy with the wall-clock fields (`sizing_nanos`, `partition_nanos`,
    /// `wall_nanos`) zeroed, leaving only the deterministic work counters.
    ///
    /// This is the comparison form of the determinism contract: two analyses
    /// of the same input must produce equal `deterministic()` probes at any
    /// pool width, while the nanosecond fields are measurements and may
    /// differ run to run.
    #[must_use]
    pub fn deterministic(&self) -> AnalysisProbe {
        AnalysisProbe {
            sizing_nanos: 0,
            partition_nanos: 0,
            wall_nanos: 0,
            ..*self
        }
    }
}

impl AddAssign<&AnalysisProbe> for AnalysisProbe {
    fn add_assign(&mut self, rhs: &AnalysisProbe) {
        self.merge(rhs);
    }
}

impl fmt::Display for AnalysisProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ls_runs={} makespans={} pruned={} dispatched={} dbf*={} dbf={} fits={} \
             cache={}H/{}M sizing={}ns partition={}ns wall={}ns",
            self.ls_runs,
            self.makespan_evaluations,
            self.ls_runs_pruned,
            self.par_tasks_dispatched,
            self.dbf_approx_evals,
            self.dbf_exact_evals,
            self.fits_calls,
            self.cache_hits,
            self.cache_misses,
            self.sizing_nanos,
            self.partition_nanos,
            self.wall_nanos
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_field_wise_addition() {
        let mut a = AnalysisProbe {
            ls_runs: 1,
            makespan_evaluations: 2,
            ls_runs_pruned: 11,
            par_tasks_dispatched: 12,
            dbf_approx_evals: 3,
            dbf_exact_evals: 4,
            fits_calls: 5,
            cache_hits: 6,
            cache_misses: 7,
            sizing_nanos: 8,
            partition_nanos: 9,
            wall_nanos: 10,
        };
        let b = a;
        a += &b;
        assert_eq!(a.ls_runs, 2);
        assert_eq!(a.ls_runs_pruned, 22);
        assert_eq!(a.par_tasks_dispatched, 24);
        assert_eq!(a.wall_nanos, 20);
        assert!(!a.is_empty());
        assert!(AnalysisProbe::new().is_empty());
    }

    #[test]
    fn merge_saturates_at_u64_max_instead_of_wrapping() {
        let mut probe = AnalysisProbe {
            ls_runs: u64::MAX,
            makespan_evaluations: u64::MAX - 1,
            wall_nanos: u64::MAX,
            ..AnalysisProbe::default()
        };
        let increment = AnalysisProbe {
            ls_runs: 1,
            makespan_evaluations: 5,
            wall_nanos: u64::MAX,
            fits_calls: 2,
            ..AnalysisProbe::default()
        };
        probe.merge(&increment);
        assert_eq!(probe.ls_runs, u64::MAX, "pins at the ceiling, no wrap");
        assert_eq!(probe.makespan_evaluations, u64::MAX);
        assert_eq!(probe.wall_nanos, u64::MAX);
        assert_eq!(probe.fits_calls, 2, "unsaturated fields still add");
    }

    #[test]
    fn serde_round_trip() {
        let probe = AnalysisProbe {
            ls_runs: 11,
            fits_calls: 3,
            ..AnalysisProbe::default()
        };
        let json = serde_json::to_string(&probe).unwrap();
        let back: AnalysisProbe = serde_json::from_str(&json).unwrap();
        assert_eq!(back, probe);
    }

    #[test]
    fn display_mentions_every_counter() {
        let s = AnalysisProbe::default().to_string();
        for key in [
            "ls_runs",
            "pruned",
            "dispatched",
            "dbf*",
            "fits",
            "cache",
            "wall",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn deterministic_view_zeroes_only_wall_clock_fields() {
        let probe = AnalysisProbe {
            ls_runs: 3,
            ls_runs_pruned: 4,
            par_tasks_dispatched: 5,
            sizing_nanos: 100,
            partition_nanos: 200,
            wall_nanos: 300,
            ..AnalysisProbe::default()
        };
        let det = probe.deterministic();
        assert_eq!(det.ls_runs, 3);
        assert_eq!(det.ls_runs_pruned, 4);
        assert_eq!(det.par_tasks_dispatched, 5);
        assert_eq!(det.sizing_nanos, 0);
        assert_eq!(det.partition_nanos, 0);
        assert_eq!(det.wall_nanos, 0);
        // Idempotent: a deterministic view is its own deterministic view.
        assert_eq!(det.deterministic(), det);
    }
}
