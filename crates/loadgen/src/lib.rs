//! Open-loop load generation for the admission server.
//!
//! The generator schedules every intended send instant **up front** from
//! the arrival process (Poisson or fixed-rate) and measures each request
//! from its *intended* start, not from the moment the socket write
//! happened. A closed-loop harness that waits for each response before
//! issuing the next request silently stretches its own inter-arrival
//! gaps whenever the server stalls — the classic *coordinated omission*
//! blind spot, where a one-second server hiccup is recorded as one slow
//! request instead of a thousand queued ones. Here the timeline never
//! bends: if the server falls behind, every delayed request's latency
//! includes the backlog it actually sat in.
//!
//! A sweep walks a geometric ladder of offered rates and reports the
//! last rung the server *sustained* — answered at least
//! [`SweepConfig::sustain_ratio`] of the offered load with no IO errors
//! and no `Busy` give-ups — as the max sustainable RPS. Per-rung
//! reports carry exact (not bucketed) p50/p90/p99/p99.9 over the
//! measured window, with the warmup prefix discarded, and keep
//! transparent `Busy` re-sends separate from hard failures.

use std::io::{self, BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration as Ticks;
use fedsched_service::{Client, ClientConfig, Response, ShardStatsSnapshot};
use serde::Serialize;

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival gaps (memoryless, bursty) — the
    /// default, because real admission traffic is not a metronome.
    Poisson,
    /// Constant inter-arrival gaps: `1/rate` between sends.
    Fixed,
}

impl ArrivalProcess {
    /// Parses `poisson` or `fixed`.
    ///
    /// # Errors
    ///
    /// A usage message for anything else.
    pub fn parse(s: &str) -> Result<ArrivalProcess, String> {
        match s {
            "poisson" => Ok(ArrivalProcess::Poisson),
            "fixed" => Ok(ArrivalProcess::Fixed),
            other => Err(format!(
                "unknown arrival process {other:?} (expected poisson|fixed)"
            )),
        }
    }

    fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Fixed => "fixed",
        }
    }
}

/// One load step's shape: how many connections, how long, which arrival
/// process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadConfig {
    /// Pre-dialed connections; one worker thread drives each.
    pub connections: usize,
    /// Leading slice of each step whose samples are discarded (cold
    /// template caches, first dials, page faults — none of it is the
    /// steady state being measured).
    pub warmup: Duration,
    /// Measured slice of each step, after the warmup.
    pub measure: Duration,
    /// Arrival process for the intended send instants.
    pub process: ArrivalProcess,
    /// Seed for the arrival-gap RNG: same seed, same intended timeline.
    pub seed: u64,
    /// Ask the server to echo its per-stage timing breakdown on every
    /// admission, so the report can split server time from queueing.
    pub echo_timing: bool,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            connections: 4,
            warmup: Duration::from_millis(500),
            measure: Duration::from_secs(2),
            process: ArrivalProcess::Poisson,
            seed: 0x10AD_6E4E,
            echo_timing: true,
        }
    }
}

/// A whole sweep: the ladder of offered rates walked until the server
/// stops keeping up.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Per-step shape.
    pub load: LoadConfig,
    /// First rung's offered rate (requests per second, all connections
    /// combined).
    pub start_rps: f64,
    /// Multiplier between rungs (geometric ladder).
    pub growth: f64,
    /// Rung count cap — the sweep also stops at the first unsustained
    /// rung.
    pub max_steps: usize,
    /// A rung is sustained when `completed >= sustain_ratio * intended`
    /// (and nothing errored or gave up busy).
    pub sustain_ratio: f64,
    /// Scrape `GET /metrics` in the middle of the first rung's measured
    /// window and validate the exposition while the server is under
    /// load.
    pub scrape_metrics: bool,
}

impl SweepConfig {
    /// CI shape: seconds of wall clock, small rates, still exercising
    /// the full pipeline (sweep, quantiles, busy/error split, mid-load
    /// scrape).
    #[must_use]
    pub fn quick() -> SweepConfig {
        SweepConfig {
            load: LoadConfig {
                connections: 2,
                warmup: Duration::from_millis(200),
                measure: Duration::from_millis(600),
                ..LoadConfig::default()
            },
            start_rps: 50.0,
            growth: 2.0,
            max_steps: 3,
            sustain_ratio: 0.95,
            scrape_metrics: true,
        }
    }

    /// Benchmark shape: long enough rungs for stable quantiles, enough
    /// rungs to find the knee.
    #[must_use]
    pub fn full() -> SweepConfig {
        SweepConfig {
            load: LoadConfig::default(),
            start_rps: 500.0,
            growth: 1.6,
            max_steps: 10,
            sustain_ratio: 0.95,
            scrape_metrics: true,
        }
    }
}

/// Fewest measured samples for which the tail quantiles are marked
/// reliable. Below this, a p99 is interpolating over a handful of
/// observations (and a p99.9 over fewer than one), so the report flags
/// the summary rather than letting a lucky rung read as a regression
/// budget. The quick CI shape always lands below this floor.
pub const MIN_RELIABLE_SAMPLES: u64 = 1000;

/// Exact latency quantiles over the measured window, in microseconds.
/// Computed from the raw sample vector — nothing here passes through
/// the server's power-of-two buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LatencySummary {
    /// Measured samples the quantiles are over.
    pub samples: u64,
    /// Whether `samples` reaches [`MIN_RELIABLE_SAMPLES`]. Quantiles on
    /// an unreliable summary are still exact over what was measured —
    /// there just was not enough measured for the tail to mean much.
    pub reliable: bool,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
    pub max_us: u64,
    pub mean_us: u64,
}

impl LatencySummary {
    /// Exact quantiles by sorting the raw samples. The q-th quantile is
    /// the smallest sample with at least `ceil(q * n)` samples at or
    /// below it (nearest-rank), so `p50` of `[1, 2]` is `1`.
    fn from_micros(mut samples: Vec<u64>) -> Option<LatencySummary> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| -> u64 {
            let k = ((q * n as f64).ceil() as usize).clamp(1, n);
            samples[k - 1]
        };
        let sum: u128 = samples.iter().map(|&s| u128::from(s)).sum();
        Some(LatencySummary {
            samples: n as u64,
            reliable: n as u64 >= MIN_RELIABLE_SAMPLES,
            p50_us: rank(0.50),
            p90_us: rank(0.90),
            p99_us: rank(0.99),
            p999_us: rank(0.999),
            max_us: samples[n - 1],
            mean_us: u64::try_from(sum / n as u128).unwrap_or(u64::MAX),
        })
    }
}

/// Mean per-stage server time, from the timing echoes the server stamps
/// on admissions when asked. Subtracting these from the end-to-end
/// latency separates "the server was slow" from "the request sat in a
/// queue".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub struct StageMeans {
    /// Echoed admissions the means are over.
    pub samples: u64,
    /// Waiting for the request's first byte — open-loop client think
    /// time, not server work. Kept out of `read_us` so socket time
    /// cannot be mistaken for a slow read path.
    pub idle_us: f64,
    pub read_us: f64,
    pub parse_us: f64,
    pub cache_us: f64,
    pub analysis_us: f64,
    pub wal_us: f64,
}

/// One rung of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StepReport {
    /// The rate the arrival process was dialed to.
    pub offered_rps: f64,
    /// Intended sends in the measured window.
    pub intended: u64,
    /// Fully answered requests in the measured window (admit, reject,
    /// and remove responses — not `Busy` give-ups, not errors).
    pub completed: u64,
    /// `completed / measure` — what the server actually served.
    pub achieved_rps: f64,
    /// Whether this rung passed the sustain criterion.
    pub sustained: bool,
    pub admitted: u64,
    pub rejected: u64,
    pub removed: u64,
    /// Transparent `Busy` re-sends inside the client (retry pressure;
    /// the request still completed).
    pub busy_retries: u64,
    /// `Busy` answers that survived every retry (the request was shed).
    pub busy_giveups: u64,
    /// IO failures (timeouts, resets, refused redials).
    pub errors: u64,
    /// Intended-start latency quantiles — queueing included, by
    /// construction.
    pub latency: LatencySummary,
    /// Mean per-stage server time, when timing echoes were requested.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub server_stages: Option<StageMeans>,
}

/// The whole sweep, as written to `BENCH_service.json`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepReport {
    /// True when the sweep ran the CI [`SweepConfig::quick`] shape.
    pub quick: bool,
    pub connections: usize,
    pub process: String,
    pub warmup_ms: u64,
    pub measure_ms: u64,
    pub seed: u64,
    /// Every rung walked, in offered-rate order.
    pub steps: Vec<StepReport>,
    /// Achieved RPS of the highest sustained rung (`None` when even the
    /// first rung fell over).
    pub max_sustainable_rps: Option<f64>,
    /// Whether a mid-load `GET /metrics` scrape parsed as a valid
    /// Prometheus exposition (`None` when scraping was off).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub metrics_validated: Option<bool>,
    /// Post-sweep per-shard occupancy: how the server's connection plane
    /// spread this sweep's work across its shards (connections served,
    /// permit steals, batching, compute-cache partition traffic). Empty
    /// when the stats probe failed or the server predates sharding.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub shards: Vec<ShardOccupancy>,
    /// The connection-scaling ladder ridden after the rate sweep: fixed
    /// offered rate, growing connection counts, watching for the p99
    /// knee. `None` when the scaling sweep was not run.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub connection_scaling: Option<ConnectionScalingReport>,
}

/// Shape of the connection-scaling sweep: the offered rate stays fixed
/// while the connection count climbs a ladder, so any latency movement
/// is attributable to connection-plane overhead (registration, timers,
/// readiness traffic), not to admission load.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingConfig {
    /// Per-rung shape; `connections` is overridden by each ladder rung.
    pub load: LoadConfig,
    /// The offered rate (all connections combined) held on every rung.
    pub fixed_rps: f64,
    /// Connection counts to walk, in order.
    pub ladder: Vec<usize>,
    /// A rung knees when its p99 exceeds this multiple of the first
    /// rung's p99 (or when it sheds or errors outright).
    pub knee_factor: f64,
}

impl ScalingConfig {
    /// CI shape: a short ladder with sub-second rungs.
    #[must_use]
    pub fn quick() -> ScalingConfig {
        ScalingConfig {
            load: LoadConfig {
                connections: 2,
                warmup: Duration::from_millis(200),
                measure: Duration::from_millis(600),
                ..LoadConfig::default()
            },
            fixed_rps: 50.0,
            ladder: vec![2, 8, 32],
            knee_factor: 8.0,
        }
    }

    /// Benchmark shape: climbs to a thousand held connections.
    #[must_use]
    pub fn full() -> ScalingConfig {
        ScalingConfig {
            load: LoadConfig::default(),
            fixed_rps: 200.0,
            ladder: vec![4, 16, 64, 256, 1000],
            knee_factor: 8.0,
        }
    }
}

/// One rung of the connection-scaling ladder.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScalingRung {
    /// Concurrent connections held on this rung.
    pub connections: usize,
    /// Fully answered requests in the measured window.
    pub completed: u64,
    /// `completed / measure`.
    pub achieved_rps: f64,
    /// IO failures on this rung.
    pub errors: u64,
    /// `Busy` answers that survived every retry.
    pub busy_giveups: u64,
    /// Intended-start latency over the rung.
    pub latency: LatencySummary,
    /// Whether this rung crossed the knee criterion.
    pub knee: bool,
}

/// The connection-scaling section of `BENCH_service.json`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConnectionScalingReport {
    /// The offered rate every rung was held at.
    pub fixed_rps: f64,
    /// Every rung walked, in ladder order.
    pub rungs: Vec<ScalingRung>,
    /// The largest connection count that stayed on the good side of the
    /// p99 knee (`None` when even the first rung kneed).
    pub max_connections_before_knee: Option<usize>,
    /// Per-shard occupancy probed right after the top rung: how the
    /// connection plane spread the widest rung across its shards.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub top_rung_shards: Vec<ShardOccupancy>,
}

/// Walks the whole connection ladder at a fixed offered rate and reports
/// where the p99 knee sits. Kneed rungs are marked, not skipped: the
/// rungs past a knee are exactly the ones that show whether the plane
/// degrades gracefully or collapses.
#[must_use]
pub fn run_connection_scaling(addr: &str, config: &ScalingConfig) -> ConnectionScalingReport {
    let mut rungs: Vec<ScalingRung> = Vec::new();
    let mut baseline_p99 = None;
    for &connections in &config.ladder {
        let load = LoadConfig {
            connections,
            ..config.load.clone()
        };
        let step = run_step(addr, config.fixed_rps, &load, 0.0, None);
        let p99 = step.latency.p99_us;
        let baseline = *baseline_p99.get_or_insert(p99.max(1));
        let knee = step.errors > 0
            || step.busy_giveups > 0
            || p99 as f64 > config.knee_factor * baseline as f64;
        rungs.push(ScalingRung {
            connections,
            completed: step.completed,
            achieved_rps: step.achieved_rps,
            errors: step.errors,
            busy_giveups: step.busy_giveups,
            latency: step.latency,
            knee,
        });
    }
    let max_connections_before_knee = rungs
        .iter()
        .take_while(|r| !r.knee)
        .map(|r| r.connections)
        .max();
    ConnectionScalingReport {
        fixed_rps: config.fixed_rps,
        rungs,
        max_connections_before_knee,
        top_rung_shards: probe_shard_occupancy(addr),
    }
}

/// One shard's share of the sweep, distilled from the server's
/// [`ShardStatsSnapshot`] after the last rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ShardOccupancy {
    /// The shard's index, `0..shards`.
    pub shard: u64,
    /// Connection permits the shard owns.
    pub permits: u64,
    /// Connections it served over the server's lifetime.
    pub connections_served: u64,
    /// Connections that borrowed one of its permits because their home
    /// shard was full.
    pub permit_steals: u64,
    /// Connections turned away with `Busy` when homed here.
    pub busy_rejections: u64,
    /// Admission requests it served.
    pub admit_requests: u64,
    /// Admission requests that committed inside a pipelined batch.
    pub batched_requests: u64,
    /// Hits in its compute-cache partition.
    pub compute_hits: u64,
    /// Misses in its compute-cache partition.
    pub compute_misses: u64,
    /// Evictions from its compute-cache partition.
    pub compute_evictions: u64,
}

impl From<&ShardStatsSnapshot> for ShardOccupancy {
    fn from(s: &ShardStatsSnapshot) -> ShardOccupancy {
        ShardOccupancy {
            shard: s.shard,
            permits: s.permits,
            connections_served: s.connections_served,
            permit_steals: s.permit_steals,
            busy_rejections: s.busy_rejections,
            admit_requests: s.admit_requests,
            batched_requests: s.batched_requests,
            compute_hits: s.compute_hits,
            compute_misses: s.compute_misses,
            compute_evictions: s.compute_evictions,
        }
    }
}

/// Fetches the server's per-shard occupancy via one `Stats` round trip.
/// Best-effort: any failure reports an empty list rather than failing
/// the sweep that already ran.
fn probe_shard_occupancy(addr: &str) -> Vec<ShardOccupancy> {
    let config = ClientConfig {
        io_timeout: Some(Duration::from_secs(5)),
        ..ClientConfig::default()
    };
    let Ok(mut client) = Client::connect_with(addr, config) else {
        return Vec::new();
    };
    match client.stats() {
        Ok(Response::Stats { snapshot }) => {
            snapshot.shards.iter().map(ShardOccupancy::from).collect()
        }
        _ => Vec::new(),
    }
}

/// Deterministic xorshift64 for arrival gaps: cheap, seedable, no
/// dependency — the same generator the service client uses for backoff
/// jitter.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform in `(0, 1]` — never zero, so `ln` is always finite.
    fn unit(&mut self) -> f64 {
        ((self.next() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// The admission workload: a small low-density task, the same shape the
/// service tests admit. Repeat admissions hit the template cache — the
/// steady state an admission server actually runs in.
fn workload_task() -> DagTask {
    DagTask::sequential(Ticks::new(1), Ticks::new(4), Ticks::new(8))
        .expect("the loadgen workload task is valid")
}

/// All intended send offsets (from step start) for one step, sorted.
/// Generated past `warmup + measure` by one gap so the last intended
/// instant inside the window is never clipped short.
fn intended_offsets(rate: f64, config: &LoadConfig) -> Vec<Duration> {
    let horizon = config.warmup + config.measure;
    let mut rng = XorShift::new(config.seed ^ rate.to_bits());
    let mut offsets = Vec::with_capacity((rate * horizon.as_secs_f64()) as usize + 16);
    let mut t = 0.0f64;
    loop {
        let gap = match config.process {
            ArrivalProcess::Poisson => -rng.unit().ln() / rate,
            ArrivalProcess::Fixed => 1.0 / rate,
        };
        t += gap;
        if t >= horizon.as_secs_f64() {
            return offsets;
        }
        offsets.push(Duration::from_secs_f64(t));
    }
}

/// Sleeps until `start + offset`, coarse-sleeping most of the gap and
/// yielding across the last couple of milliseconds so intended instants
/// land tightly without burning a full spin-wait.
fn sleep_until(start: Instant, offset: Duration) {
    loop {
        let elapsed = start.elapsed();
        if elapsed >= offset {
            return;
        }
        let remaining = offset - elapsed;
        if remaining > Duration::from_millis(2) {
            std::thread::sleep(remaining - Duration::from_millis(1));
        } else {
            std::thread::yield_now();
        }
    }
}

/// What one worker saw over its slice of the step.
#[derive(Default)]
struct WorkerOutcome {
    latencies_us: Vec<u64>,
    completed: u64,
    admitted: u64,
    rejected: u64,
    removed: u64,
    busy_retries: u64,
    busy_giveups: u64,
    errors: u64,
    stage_sums_us: [u64; 6],
    stage_samples: u64,
}

/// Runs one worker: walk the assigned offsets, alternate admit/remove
/// (so server occupancy stays flat across the whole sweep), measure
/// from the intended instant. The connection is held open until
/// `horizon` even after the worker's last send — a rung's connection
/// count means sockets *concurrently held*, not sockets ever dialed,
/// which is the whole point of the connection-scaling ladder.
fn run_worker(
    addr: &str,
    offsets: &[Duration],
    warmup: Duration,
    horizon: Duration,
    echo_timing: bool,
    start: Instant,
) -> WorkerOutcome {
    let mut out = WorkerOutcome::default();
    let config = ClientConfig {
        io_timeout: Some(Duration::from_secs(5)),
        ..ClientConfig::default()
    };
    let Ok(mut client) = Client::connect_with(addr, config) else {
        out.errors = offsets.len() as u64;
        return out;
    };
    let task = workload_task();
    let mut tokens: Vec<u64> = Vec::new();
    let mut retries_before = client.busy_retry_attempts();
    for &offset in offsets {
        sleep_until(start, offset);
        let measured = offset >= warmup;
        let response = match tokens.pop() {
            Some(token) => client.remove(token),
            None if echo_timing => client.admit_timed(&task, None),
            None => client.admit(&task),
        };
        let latency = start.elapsed().saturating_sub(offset);
        let retries_now = client.busy_retry_attempts();
        if measured {
            out.busy_retries += retries_now - retries_before;
        }
        retries_before = retries_now;
        match response {
            Ok(Response::Admitted { token, timing, .. }) => {
                tokens.push(token);
                if measured {
                    out.admitted += 1;
                    if let Some(t) = timing {
                        out.stage_sums_us[0] += t.idle_us;
                        out.stage_sums_us[1] += t.read_us;
                        out.stage_sums_us[2] += t.parse_us;
                        out.stage_sums_us[3] += t.cache_us;
                        out.stage_sums_us[4] += t.analysis_us;
                        out.stage_sums_us[5] += t.wal_us;
                        out.stage_samples += 1;
                    }
                }
            }
            Ok(Response::Rejected { .. }) => {
                if measured {
                    out.rejected += 1;
                }
            }
            Ok(Response::Removed { .. } | Response::NotFound { .. }) => {
                if measured {
                    out.removed += 1;
                }
            }
            Ok(Response::Busy { .. }) => {
                if measured {
                    out.busy_giveups += 1;
                }
                continue;
            }
            Ok(_) => {}
            Err(_) => {
                if measured {
                    out.errors += 1;
                }
                continue;
            }
        }
        if measured {
            out.completed += 1;
            let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
            out.latencies_us.push(us);
        }
    }
    // Hold the connection through the end of the window, then leave the
    // server as found by draining this worker's leftover tokens.
    sleep_until(start, horizon);
    for token in tokens {
        let _ = client.remove(token);
    }
    out
}

/// Scrapes `GET /metrics` over plain HTTP and returns the exposition
/// body.
///
/// # Errors
///
/// Connect/IO errors, or `InvalidData` when the response is not an
/// HTTP 200.
pub fn scrape_metrics(addr: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    if !status.contains("200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("metrics scrape answered {}", status.trim()),
        ));
    }
    let mut body = String::new();
    let mut in_body = false;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(body);
        }
        if in_body {
            body.push_str(&line);
        } else if line.trim_end().is_empty() {
            in_body = true;
        }
    }
}

/// Runs one rung: pre-dials the connections, schedules the full
/// intended timeline, drives it open-loop, and summarizes.
///
/// `scrape` additionally fetches `GET /metrics` in the middle of the
/// measured window — while the server is under this rung's load — and
/// records whether the exposition validated.
fn run_step(
    addr: &str,
    rate: f64,
    config: &LoadConfig,
    sustain_ratio: f64,
    scrape: Option<&mut Option<bool>>,
) -> StepReport {
    let offsets = intended_offsets(rate, config);
    let workers = config.connections.max(1);
    // Round-robin a sorted timeline: each worker's slice stays sorted.
    let mut per_worker: Vec<Vec<Duration>> = vec![Vec::new(); workers];
    for (i, &offset) in offsets.iter().enumerate() {
        per_worker[i % workers].push(offset);
    }
    let intended = offsets.iter().filter(|&&o| o >= config.warmup).count() as u64;

    let start = Instant::now();
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_worker
            .iter()
            .map(|slice| {
                scope.spawn(move || {
                    run_worker(
                        addr,
                        slice,
                        config.warmup,
                        config.warmup + config.measure,
                        config.echo_timing,
                        start,
                    )
                })
            })
            .collect();
        if let Some(validated) = scrape {
            sleep_until(start, config.warmup + config.measure / 2);
            *validated = Some(
                scrape_metrics(addr)
                    .is_ok_and(|body| fedsched_telemetry::validate_exposition(&body).is_ok()),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });

    let mut latencies = Vec::new();
    let mut total = WorkerOutcome::default();
    for mut o in outcomes {
        latencies.append(&mut o.latencies_us);
        total.completed += o.completed;
        total.admitted += o.admitted;
        total.rejected += o.rejected;
        total.removed += o.removed;
        total.busy_retries += o.busy_retries;
        total.busy_giveups += o.busy_giveups;
        total.errors += o.errors;
        for (sum, add) in total.stage_sums_us.iter_mut().zip(o.stage_sums_us) {
            *sum += add;
        }
        total.stage_samples += o.stage_samples;
    }
    let latency = LatencySummary::from_micros(latencies).unwrap_or(LatencySummary {
        samples: 0,
        reliable: false,
        p50_us: 0,
        p90_us: 0,
        p99_us: 0,
        p999_us: 0,
        max_us: 0,
        mean_us: 0,
    });
    let server_stages = (total.stage_samples > 0).then(|| {
        let mean = |i: usize| total.stage_sums_us[i] as f64 / total.stage_samples as f64;
        StageMeans {
            samples: total.stage_samples,
            idle_us: mean(0),
            read_us: mean(1),
            parse_us: mean(2),
            cache_us: mean(3),
            analysis_us: mean(4),
            wal_us: mean(5),
        }
    });
    let achieved_rps = total.completed as f64 / config.measure.as_secs_f64();
    let sustained = total.errors == 0
        && total.busy_giveups == 0
        && total.completed as f64 >= sustain_ratio * intended as f64;
    StepReport {
        offered_rps: rate,
        intended,
        completed: total.completed,
        achieved_rps,
        sustained,
        admitted: total.admitted,
        rejected: total.rejected,
        removed: total.removed,
        busy_retries: total.busy_retries,
        busy_giveups: total.busy_giveups,
        errors: total.errors,
        latency,
        server_stages,
    }
}

/// Walks the rate ladder against a running server at `addr` until a
/// rung fails or the ladder tops out, and reports every rung plus the
/// max sustained rate.
#[must_use]
pub fn run_sweep(addr: &str, config: &SweepConfig, quick: bool) -> SweepReport {
    let mut steps = Vec::new();
    let mut metrics_validated = None;
    let mut rate = config.start_rps;
    for step in 0..config.max_steps.max(1) {
        let scrape = (config.scrape_metrics && step == 0).then_some(&mut metrics_validated);
        let report = run_step(addr, rate, &config.load, config.sustain_ratio, scrape);
        let sustained = report.sustained;
        steps.push(report);
        if !sustained {
            break;
        }
        rate *= config.growth;
    }
    let max_sustainable_rps = steps
        .iter()
        .filter(|s| s.sustained)
        .map(|s| s.achieved_rps)
        .fold(None, |best: Option<f64>, rps| {
            Some(best.map_or(rps, |b| b.max(rps)))
        });
    SweepReport {
        quick,
        connections: config.load.connections,
        process: config.load.process.name().to_owned(),
        warmup_ms: u64::try_from(config.load.warmup.as_millis()).unwrap_or(u64::MAX),
        measure_ms: u64::try_from(config.load.measure.as_millis()).unwrap_or(u64::MAX),
        seed: config.load.seed,
        steps,
        max_sustainable_rps,
        metrics_validated,
        shards: probe_shard_occupancy(addr),
        connection_scaling: None,
    }
}

/// Renders the human-readable sweep summary (the JSON report is the
/// machine-readable artifact).
#[must_use]
pub fn render_report(report: &SweepReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "open-loop sweep: {} connection(s), {} arrivals, warmup {} ms, measure {} ms per rung",
        report.connections, report.process, report.warmup_ms, report.measure_ms
    );
    for step in &report.steps {
        let _ = writeln!(
            out,
            "  offered {:>8.1} rps: achieved {:>8.1} rps ({}/{} answered) \
             p50 {}µs p90 {}µs p99 {}µs p99.9 {}µs max {}µs{}{}",
            step.offered_rps,
            step.achieved_rps,
            step.completed,
            step.intended,
            step.latency.p50_us,
            step.latency.p90_us,
            step.latency.p99_us,
            step.latency.p999_us,
            step.latency.max_us,
            if step.busy_retries + step.busy_giveups + step.errors > 0 {
                format!(
                    " [busy-retries {}, busy-giveups {}, errors {}]",
                    step.busy_retries, step.busy_giveups, step.errors
                )
            } else {
                String::new()
            },
            if step.sustained {
                ""
            } else {
                "  (NOT sustained)"
            },
        );
        if !step.latency.reliable {
            let _ = writeln!(
                out,
                "    (quantiles unreliable: {} sample(s), below the {} floor)",
                step.latency.samples, MIN_RELIABLE_SAMPLES,
            );
        }
        if let Some(stages) = &step.server_stages {
            let _ = writeln!(
                out,
                "    server stages (mean over {} echoes): idle-wait {:.1}µs (client think \
                 time), read {:.1}µs, parse {:.1}µs, cache {:.1}µs, analysis {:.1}µs, wal {:.1}µs",
                stages.samples,
                stages.idle_us,
                stages.read_us,
                stages.parse_us,
                stages.cache_us,
                stages.analysis_us,
                stages.wal_us,
            );
        }
    }
    match report.max_sustainable_rps {
        Some(rps) => {
            let _ = writeln!(out, "max sustainable rate: {rps:.1} rps");
        }
        None => {
            let _ = writeln!(out, "max sustainable rate: none (first rung fell over)");
        }
    }
    if let Some(validated) = report.metrics_validated {
        let _ = writeln!(
            out,
            "mid-load /metrics exposition: {}",
            if validated { "valid" } else { "INVALID" }
        );
    }
    if !report.shards.is_empty() {
        let _ = writeln!(out, "shard occupancy ({} shard(s)):", report.shards.len());
        for s in &report.shards {
            let _ = writeln!(
                out,
                "  shard {}: {} conn(s) over {} permit(s) \
                 [steals-lent {}, busy {}], {} admit(s) ({} batched), \
                 compute cache {} hit(s) / {} miss(es) / {} evicted",
                s.shard,
                s.connections_served,
                s.permits,
                s.permit_steals,
                s.busy_rejections,
                s.admit_requests,
                s.batched_requests,
                s.compute_hits,
                s.compute_misses,
                s.compute_evictions,
            );
        }
    }
    if let Some(scaling) = &report.connection_scaling {
        let _ = writeln!(
            out,
            "connection scaling at {:.1} rps offered:",
            scaling.fixed_rps
        );
        for rung in &scaling.rungs {
            let _ = writeln!(
                out,
                "  {:>5} connection(s): achieved {:>8.1} rps, p99 {}µs{}{}{}",
                rung.connections,
                rung.achieved_rps,
                rung.latency.p99_us,
                if rung.errors + rung.busy_giveups > 0 {
                    format!(
                        " [busy-giveups {}, errors {}]",
                        rung.busy_giveups, rung.errors
                    )
                } else {
                    String::new()
                },
                if rung.latency.reliable {
                    String::new()
                } else {
                    format!(" (unreliable: {} sample(s))", rung.latency.samples)
                },
                if rung.knee { "  <- p99 knee" } else { "" },
            );
        }
        match scaling.max_connections_before_knee {
            Some(n) => {
                let _ = writeln!(out, "  max connections before the knee: {n}");
            }
            None => {
                let _ = writeln!(
                    out,
                    "  max connections before the knee: none (first rung kneed)"
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_offsets_are_sorted_and_inside_the_horizon() {
        let config = LoadConfig {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(400),
            ..LoadConfig::default()
        };
        let offsets = intended_offsets(200.0, &config);
        assert!(!offsets.is_empty());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "sorted timeline");
        let horizon = config.warmup + config.measure;
        assert!(offsets.iter().all(|&o| o < horizon));
        // ~200 rps over 0.5 s ≈ 100 arrivals; Poisson jitter stays well
        // inside [40, 250] with overwhelming probability for a fixed seed.
        assert!((40..=250).contains(&offsets.len()), "{}", offsets.len());
    }

    #[test]
    fn fixed_offsets_tick_at_the_exact_rate() {
        let config = LoadConfig {
            warmup: Duration::from_millis(0),
            measure: Duration::from_millis(1000),
            process: ArrivalProcess::Fixed,
            ..LoadConfig::default()
        };
        let offsets = intended_offsets(100.0, &config);
        assert_eq!(offsets.len(), 99, "10ms grid over 1s, first at 10ms");
        let grid = Duration::from_millis(10);
        for (i, &o) in offsets.iter().enumerate() {
            let expected = grid * (i as u32 + 1);
            assert!(
                o.abs_diff(expected) < Duration::from_micros(10),
                "tick {i} drifted"
            );
        }
    }

    #[test]
    fn identical_seeds_produce_identical_timelines() {
        let config = LoadConfig::default();
        assert_eq!(
            intended_offsets(333.0, &config),
            intended_offsets(333.0, &config)
        );
    }

    #[test]
    fn quantile_reliability_follows_the_sample_floor() {
        let scant = LatencySummary::from_micros(vec![10; 999]).unwrap();
        assert!(!scant.reliable, "999 samples sit below the floor");
        let enough = LatencySummary::from_micros(vec![10; 1000]).unwrap();
        assert!(enough.reliable, "the floor itself is reliable");
    }

    #[test]
    fn quantile_summary_is_exact_nearest_rank() {
        let summary = LatencySummary::from_micros((1..=1000).rev().collect()).unwrap();
        assert_eq!(summary.samples, 1000);
        assert!(summary.reliable);
        assert_eq!(summary.p50_us, 500);
        assert_eq!(summary.p90_us, 900);
        assert_eq!(summary.p99_us, 990);
        assert_eq!(summary.p999_us, 999);
        assert_eq!(summary.max_us, 1000);
        assert_eq!(summary.mean_us, 500);
        assert!(LatencySummary::from_micros(Vec::new()).is_none());
    }

    #[test]
    fn arrival_process_parses_and_rejects() {
        assert_eq!(
            ArrivalProcess::parse("poisson"),
            Ok(ArrivalProcess::Poisson)
        );
        assert_eq!(ArrivalProcess::parse("fixed"), Ok(ArrivalProcess::Fixed));
        assert!(ArrivalProcess::parse("lockstep").is_err());
    }
}
