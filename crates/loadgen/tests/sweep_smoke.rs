//! End-to-end sweep against a real in-process server: the open-loop
//! engine must complete requests, produce exact quantiles, validate the
//! mid-load metrics scrape, and serialize a schema-stable
//! `BENCH_service.json` report.

use std::time::Duration;

use fedsched_loadgen::{
    run_connection_scaling, run_sweep, ArrivalProcess, LoadConfig, ScalingConfig, SweepConfig,
};
use fedsched_service::server::{serve, ConnectionLimits, ServerConfig};
use fedsched_service::state::AdmissionConfig;

fn tiny_sweep() -> SweepConfig {
    SweepConfig {
        load: LoadConfig {
            connections: 2,
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(400),
            process: ArrivalProcess::Poisson,
            seed: 7,
            echo_timing: true,
        },
        start_rps: 40.0,
        growth: 2.0,
        max_steps: 2,
        sustain_ratio: 0.5,
        scrape_metrics: true,
    }
}

#[test]
fn sweep_completes_requests_and_validates_metrics_under_load() {
    let handle = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 1,
        conn_model: Default::default(),
        admission: AdmissionConfig::new(8),
        limits: ConnectionLimits::default(),
        durability: None,
        handoff_from: None,
    })
    .expect("bind loopback");
    let addr = handle.local_addr().to_string();

    let mut report = run_sweep(&addr, &tiny_sweep(), true);

    assert!(!report.steps.is_empty(), "at least one rung ran");
    let first = &report.steps[0];
    assert!(first.completed > 0, "requests completed: {first:?}");
    assert_eq!(first.errors, 0, "no IO errors against a healthy server");
    assert_eq!(
        first.completed,
        first.admitted + first.rejected + first.removed,
        "every completed request is categorized"
    );
    assert!(
        first.admitted > 0 && first.removed > 0,
        "the admit/remove alternation exercises both paths: {first:?}"
    );
    assert_eq!(first.rejected, 0, "occupancy stays under the platform size");
    assert!(
        first.latency.samples == first.completed,
        "one latency sample per completed request"
    );
    assert!(
        first.latency.p50_us <= first.latency.p99_us
            && first.latency.p99_us <= first.latency.max_us,
        "quantiles are ordered: {:?}",
        first.latency
    );
    let stages = first
        .server_stages
        .as_ref()
        .expect("echo_timing produces server stage means");
    assert!(stages.samples > 0 && stages.samples <= first.admitted);
    assert_eq!(
        report.metrics_validated,
        Some(true),
        "mid-load /metrics exposition validates"
    );
    assert!(
        report.max_sustainable_rps.is_some(),
        "a lenient sustain ratio finds a sustained rung: {report:?}"
    );
    assert!(
        !first.latency.reliable,
        "a tiny smoke rung must be flagged as quantile-unreliable"
    );

    // The connection-scaling ladder rides the same server.
    let scaling = run_connection_scaling(
        &addr,
        &ScalingConfig {
            load: tiny_sweep().load,
            fixed_rps: 40.0,
            ladder: vec![1, 4],
            knee_factor: 1e9, // no knee at smoke scale
        },
    );
    assert_eq!(scaling.rungs.len(), 2, "every ladder rung ran: {scaling:?}");
    assert!(scaling.rungs.iter().all(|r| r.errors == 0));
    assert_eq!(
        scaling.max_connections_before_knee,
        Some(4),
        "no knee at smoke scale: {scaling:?}"
    );
    assert!(
        !scaling.top_rung_shards.is_empty(),
        "the top-rung occupancy probe lands"
    );
    report.connection_scaling = Some(scaling);

    // The machine-readable artifact round-trips through JSON with the
    // fields CI's schema check greps for.
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    for key in [
        "\"max_sustainable_rps\"",
        "\"p50_us\"",
        "\"p999_us\"",
        "\"busy_retries\"",
        "\"busy_giveups\"",
        "\"errors\"",
        "\"achieved_rps\"",
        "\"metrics_validated\"",
        "\"reliable\"",
        "\"connection_scaling\"",
        "\"max_connections_before_knee\"",
    ] {
        assert!(json.contains(key), "report JSON carries {key}:\n{json}");
    }

    // The sweep cleaned up after itself: no resident tasks leak across
    // rungs, so back-to-back sweeps see the same server.
    let mut client = fedsched_service::Client::connect(handle.local_addr()).expect("connect");
    let fedsched_service::Response::Stats { snapshot } = client.stats().expect("stats") else {
        panic!("stats answered something else");
    };
    assert_eq!(snapshot.resident_tasks, 0, "admit/remove left no residue");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn sweep_against_a_dead_address_reports_errors_not_panics() {
    // Nothing listens on this port (bind, take the addr, drop the
    // listener).
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let config = SweepConfig {
        max_steps: 1,
        scrape_metrics: false,
        load: LoadConfig {
            connections: 1,
            warmup: Duration::from_millis(10),
            measure: Duration::from_millis(50),
            ..LoadConfig::default()
        },
        ..tiny_sweep()
    };
    let report = run_sweep(&dead, &config, true);
    assert_eq!(report.steps.len(), 1);
    assert!(!report.steps[0].sustained);
    assert_eq!(report.max_sustainable_rps, None);
    assert_eq!(report.steps[0].completed, 0);
}
