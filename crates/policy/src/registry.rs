//! The named policy registry consumers iterate instead of matching on
//! policy kinds.
//!
//! Adding a new analysis to the workspace is now a one-file change: write
//! the [`SchedulingPolicy`] impl and append it to [`registry_with`] — the
//! CLI (`analyze --policy <name>`), the experiment harness, and the
//! benches all pick it up by name.

use fedsched_core::fedcons::FedConsConfig;

use crate::policies::{
    FedCons, FedConsConstraining, GlobalEdfDensity, GlobalEdfLi, LiFederated, SchedulingPolicy,
};

/// Every registered policy, with FEDCONS-family members using `config`.
#[must_use]
pub fn registry_with(config: FedConsConfig) -> Vec<Box<dyn SchedulingPolicy>> {
    vec![
        Box::new(FedCons::new(config)),
        Box::new(FedConsConstraining::new(config)),
        Box::new(LiFederated),
        Box::new(GlobalEdfLi),
        Box::new(GlobalEdfDensity),
    ]
}

/// Every registered policy with default configuration.
#[must_use]
pub fn registry() -> Vec<Box<dyn SchedulingPolicy>> {
    registry_with(FedConsConfig::default())
}

/// The registry names, in registry order.
#[must_use]
pub fn policy_names() -> Vec<&'static str> {
    registry().iter().map(|p| p.name()).collect()
}

/// Looks up one policy by registry name, with FEDCONS-family members
/// using `config`.
#[must_use]
pub fn policy_by_name_with(name: &str, config: FedConsConfig) -> Option<Box<dyn SchedulingPolicy>> {
    registry_with(config).into_iter().find(|p| p.name() == name)
}

/// Looks up one policy by registry name with default configuration.
#[must_use]
pub fn policy_by_name(name: &str) -> Option<Box<dyn SchedulingPolicy>> {
    policy_by_name_with(name, FedConsConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_stable_and_unique() {
        let names = policy_names();
        assert_eq!(
            names,
            vec![
                "fedcons",
                "fedcons-constraining",
                "li-federated",
                "gedf-li",
                "gedf-density"
            ]
        );
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(policy_by_name("fedcons").is_some());
        assert!(policy_by_name("li-federated").is_some());
        assert!(policy_by_name("no-such-policy").is_none());
    }

    #[test]
    fn every_policy_has_metadata() {
        for p in registry() {
            assert!(!p.citation().is_empty(), "{} missing citation", p.name());
            assert!(
                !p.speedup_bound().is_empty(),
                "{} missing speedup bound",
                p.name()
            );
        }
    }
}
