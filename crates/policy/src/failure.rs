//! The unified admission-failure taxonomy.
//!
//! Every concrete analysis failure (`FedConsFailure`, `LiFederatedFailure`,
//! `PartitionFailure`, a violated closed-form condition) maps into
//! [`AdmissionFailure`], which is serde-serializable so failures travel
//! through the CLI's JSON output and the admission protocol unchanged.

use core::fmt;

use fedsched_analysis::partition::PartitionFailure;
use fedsched_core::baselines::LiFederatedFailure;
use fedsched_core::fedcons::FedConsFailure;
use fedsched_dag::system::TaskId;
use fedsched_dag::task::DeadlineClass;
use serde::{Deserialize, Serialize};

/// Why a [`SchedulingPolicy`](crate::SchedulingPolicy) declined a system.
///
/// The taxonomy covers all four failure families the workspace's analyses
/// produce; each variant names the offending task where one exists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionFailure {
    /// A task's deadline class is outside the policy's model — e.g.
    /// FEDCONS is defined for `D ≤ T` only, Li's federated algorithm for
    /// `D = T` only.
    UnsupportedDeadlineClass {
        /// The first offending task.
        task: TaskId,
        /// The most general deadline class the policy supports.
        supported: DeadlineClass,
    },
    /// Sizing a dedicated cluster failed: `MINPROCS` (or Li's closed-form
    /// `m_i`) found no cluster within the remaining processors, or the
    /// task is infeasible on any cluster (`len > D`).
    ClusterSizing {
        /// The task that could not be sized.
        task: TaskId,
        /// Processors still unassigned when it was considered.
        remaining: u32,
    },
    /// Placing a task on the shared pool failed: it fit on no processor
    /// under the partitioner's admission test.
    SharedPlacement {
        /// The task that fit nowhere.
        task: TaskId,
        /// Shared processors available, when the failing analysis reports
        /// it (`None` for Li's budget-based partitioning).
        processors: Option<u32>,
    },
    /// A closed-form schedulability condition (a global-EDF test) does
    /// not hold; there is no single offending task.
    ConditionViolated {
        /// The violated condition, e.g. `"U ≤ m/(4 − 2/m)"`.
        condition: String,
    },
}

impl fmt::Display for AdmissionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionFailure::UnsupportedDeadlineClass { task, supported } => {
                write!(f, "task {task} is outside the supported {supported} model")
            }
            AdmissionFailure::ClusterSizing { task, remaining } => write!(
                f,
                "no dedicated cluster for task {task} within {remaining} remaining processors"
            ),
            AdmissionFailure::SharedPlacement { task, processors } => match processors {
                Some(p) => write!(f, "task {task} fits on none of the {p} shared processors"),
                None => write!(f, "task {task} fits on no shared processor"),
            },
            AdmissionFailure::ConditionViolated { condition } => {
                write!(f, "schedulability condition violated: {condition}")
            }
        }
    }
}

impl std::error::Error for AdmissionFailure {}

impl From<FedConsFailure> for AdmissionFailure {
    fn from(e: FedConsFailure) -> Self {
        match e {
            FedConsFailure::ArbitraryDeadline { task } => {
                AdmissionFailure::UnsupportedDeadlineClass {
                    task,
                    supported: DeadlineClass::Constrained,
                }
            }
            FedConsFailure::HighDensityTask { task, remaining } => {
                AdmissionFailure::ClusterSizing { task, remaining }
            }
            FedConsFailure::Partition(p) => p.into(),
        }
    }
}

impl From<PartitionFailure> for AdmissionFailure {
    fn from(p: PartitionFailure) -> Self {
        AdmissionFailure::SharedPlacement {
            task: p.task,
            processors: Some(u32::try_from(p.processors).unwrap_or(u32::MAX)),
        }
    }
}

impl From<LiFederatedFailure> for AdmissionFailure {
    fn from(e: LiFederatedFailure) -> Self {
        match e {
            LiFederatedFailure::NotImplicitDeadline { task } => {
                AdmissionFailure::UnsupportedDeadlineClass {
                    task,
                    supported: DeadlineClass::Implicit,
                }
            }
            LiFederatedFailure::HighUtilizationTask { task, remaining } => {
                AdmissionFailure::ClusterSizing { task, remaining }
            }
            LiFederatedFailure::LowUtilizationTask { task } => AdmissionFailure::SharedPlacement {
                task,
                processors: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> TaskId {
        TaskId::from_index(i)
    }

    #[test]
    fn serde_round_trips_every_variant() {
        let variants = [
            AdmissionFailure::UnsupportedDeadlineClass {
                task: id(0),
                supported: DeadlineClass::Constrained,
            },
            AdmissionFailure::ClusterSizing {
                task: id(3),
                remaining: 7,
            },
            AdmissionFailure::SharedPlacement {
                task: id(1),
                processors: Some(4),
            },
            AdmissionFailure::SharedPlacement {
                task: id(2),
                processors: None,
            },
            AdmissionFailure::ConditionViolated {
                condition: "Σδ ≤ m − (m−1)·δmax".into(),
            },
        ];
        for failure in variants {
            let json = serde_json::to_string(&failure).unwrap();
            let back: AdmissionFailure = serde_json::from_str(&json).unwrap();
            assert_eq!(back, failure, "round trip through {json}");
        }
    }

    #[test]
    fn conversions_preserve_the_offending_task() {
        let f: AdmissionFailure = FedConsFailure::HighDensityTask {
            task: id(5),
            remaining: 2,
        }
        .into();
        assert_eq!(
            f,
            AdmissionFailure::ClusterSizing {
                task: id(5),
                remaining: 2
            }
        );

        let f: AdmissionFailure = FedConsFailure::Partition(PartitionFailure {
            task: id(9),
            processors: 3,
        })
        .into();
        assert_eq!(
            f,
            AdmissionFailure::SharedPlacement {
                task: id(9),
                processors: Some(3)
            }
        );

        let f: AdmissionFailure = LiFederatedFailure::NotImplicitDeadline { task: id(1) }.into();
        assert!(matches!(
            f,
            AdmissionFailure::UnsupportedDeadlineClass {
                supported: DeadlineClass::Implicit,
                ..
            }
        ));
    }

    #[test]
    fn display_is_informative() {
        let f = AdmissionFailure::SharedPlacement {
            task: id(1),
            processors: Some(4),
        };
        assert!(f.to_string().contains("none of the 4"));
        let f = AdmissionFailure::ConditionViolated {
            condition: "U ≤ m/b".into(),
        };
        assert!(f.to_string().contains("U ≤ m/b"));
    }
}
