//! What a successful policy run produced.

use fedsched_core::baselines::LiFederatedSchedule;
use fedsched_core::fedcons::FederatedSchedule;
use serde::{Deserialize, Serialize};

/// The artifact of a successful
/// [`SchedulingPolicy::analyze`](crate::SchedulingPolicy::analyze) call.
///
/// Analyses differ in how much run-time configuration they produce: the
/// paper's FEDCONS emits a complete federated configuration (clusters,
/// templates, and an EDF partition), Li's algorithm a federated
/// configuration without deadline-ordered partitioning, and the
/// closed-form global-EDF tests nothing beyond "schedulable". The enum
/// makes that spread explicit while staying serde-serializable end to
/// end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleOutcome {
    /// A full federated configuration (FEDCONS and variants).
    Federated(FederatedSchedule),
    /// A Li-style federated configuration (dedicated clusters plus
    /// utilization-partitioned shared processors).
    LiFederated(LiFederatedSchedule),
    /// A bare schedulability verdict: the system is schedulable under the
    /// policy's run-time scheduler (global EDF), but no static
    /// configuration is produced.
    Verdict,
}

impl ScheduleOutcome {
    /// The federated configuration, if this outcome carries one.
    #[must_use]
    pub fn as_federated(&self) -> Option<&FederatedSchedule> {
        match self {
            ScheduleOutcome::Federated(s) => Some(s),
            _ => None,
        }
    }

    /// The Li-style configuration, if this outcome carries one.
    #[must_use]
    pub fn as_li_federated(&self) -> Option<&LiFederatedSchedule> {
        match self {
            ScheduleOutcome::LiFederated(s) => Some(s),
            _ => None,
        }
    }

    /// Total processors dedicated to clusters by this outcome (zero for a
    /// bare verdict).
    #[must_use]
    pub fn dedicated_processors(&self) -> u32 {
        match self {
            ScheduleOutcome::Federated(s) => s.shared_first(),
            ScheduleOutcome::LiFederated(s) => s.clusters.iter().map(|c| c.processors).sum(),
            ScheduleOutcome::Verdict => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_core::fedcons::{fedcons, FedConsConfig};
    use fedsched_dag::examples::paper_example2;

    #[test]
    fn verdict_has_no_configuration() {
        let o = ScheduleOutcome::Verdict;
        assert!(o.as_federated().is_none());
        assert!(o.as_li_federated().is_none());
        assert_eq!(o.dedicated_processors(), 0);
    }

    #[test]
    fn federated_outcome_round_trips_and_reports_clusters() {
        let system = paper_example2(3);
        let s = fedcons(&system, 3, FedConsConfig::default()).unwrap();
        let o = ScheduleOutcome::Federated(s.clone());
        assert_eq!(o.dedicated_processors(), 3);
        assert_eq!(o.as_federated(), Some(&s));
        let json = serde_json::to_string(&o).unwrap();
        let back: ScheduleOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, o);
    }
}
