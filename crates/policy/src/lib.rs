//! `fedsched-policy` — every schedulability analysis in the workspace
//! behind one trait.
//!
//! The paper's FEDCONS (Fig. 2) is one point in a family of federated
//! analyses; the baselines of Li et al. and the two global-EDF tests are
//! others, and semi-federated / reservation-based successors are on the
//! roadmap. Before this crate each analysis exposed a bespoke signature
//! and failure enum, so every consumer (experiments, CLI, admission
//! service, benches) hand-rolled per-policy glue. Here they are unified:
//!
//! * [`SchedulingPolicy`] — the trait:
//!   `analyze(&TaskSystem, m, &mut AnalysisProbe) → Result<ScheduleOutcome, AdmissionFailure>`;
//! * [`ScheduleOutcome`] — what a successful admission produced: a full
//!   federated configuration, a Li-style federated configuration, or a
//!   bare verdict (for the closed-form global tests);
//! * [`AdmissionFailure`] — the unified, serde-serializable failure
//!   taxonomy every concrete failure enum maps into;
//! * [`registry()`] — the named registry (`"fedcons"`,
//!   `"fedcons-constraining"`, `"li-federated"`, `"gedf-li"`,
//!   `"gedf-density"`) consumers iterate instead of matching on policy
//!   kinds.
//!
//! Every `analyze` call threads an [`AnalysisProbe`] through the
//! underlying `*_probed` analysis entry points, so each verdict ships with
//! its cost: LS simulations run by `MINPROCS`, makespan evaluations,
//! `DBF*`/exact `dbf` evaluations, `fits()` calls, and per-phase wall
//! time. The probed entry points are the same code the unprobed ones
//! wrap, so a FEDCONS run through the trait is byte-identical to a direct
//! [`fedcons`](fedsched_core::fedcons::fedcons) call.
//!
//! # Examples
//!
//! ```
//! use fedsched_analysis::probe::AnalysisProbe;
//! use fedsched_dag::examples::paper_figure1;
//! use fedsched_dag::system::TaskSystem;
//! use fedsched_policy::{policy_by_name, ScheduleOutcome};
//!
//! let policy = policy_by_name("fedcons").expect("registered");
//! let system: TaskSystem = [paper_figure1()].into_iter().collect();
//! let mut probe = AnalysisProbe::default();
//! let outcome = policy.analyze(&system, 2, &mut probe).expect("schedulable");
//! assert!(matches!(outcome, ScheduleOutcome::Federated(_)));
//! assert_eq!(probe.fits_calls, 1); // one first-fit test for the one task
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod failure;
pub mod outcome;
pub mod policies;
pub mod registry;

pub use failure::AdmissionFailure;
pub use fedsched_analysis::probe::AnalysisProbe;
pub use outcome::ScheduleOutcome;
pub use policies::{
    FedCons, FedConsConstraining, GlobalEdfDensity, GlobalEdfLi, LiFederated, SchedulingPolicy,
};
pub use registry::{policy_by_name, policy_by_name_with, policy_names, registry, registry_with};
