//! The [`SchedulingPolicy`] trait and the five registered analyses.

use core::fmt;
use std::time::Instant;

use fedsched_analysis::probe::AnalysisProbe;
use fedsched_core::baselines::{global_edf_density_test, global_edf_li_test, li_federated_probed};
use fedsched_core::fedcons::{fedcons_constraining_probed, fedcons_probed, FedConsConfig};
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DeadlineClass;

use crate::failure::AdmissionFailure;
use crate::outcome::ScheduleOutcome;

/// A schedulability analysis with a uniform signature and built-in cost
/// accounting.
///
/// Implementations must be deterministic: the same `(system, m)` pair must
/// always produce the same result, and the probe must never influence the
/// verdict (instrumentation is write-only).
pub trait SchedulingPolicy: fmt::Debug + Send + Sync {
    /// The registry name, e.g. `"fedcons"` (kebab-case, stable across
    /// releases — it is the CLI's `--policy` vocabulary).
    fn name(&self) -> &'static str;

    /// The paper the analysis comes from.
    fn citation(&self) -> &'static str;

    /// The proven speedup / capacity-augmentation bound, as prose (e.g.
    /// `"3 − 1/m"`), or a note that none applies.
    fn speedup_bound(&self) -> &'static str;

    /// Analyzes `system` on `m` unit-speed processors, accumulating cost
    /// counters into `probe`.
    ///
    /// # Errors
    ///
    /// An [`AdmissionFailure`] explaining why the system was declined.
    fn analyze(
        &self,
        system: &TaskSystem,
        m: u32,
        probe: &mut AnalysisProbe,
    ) -> Result<ScheduleOutcome, AdmissionFailure>;
}

/// Runs `f`, adding its wall time to `probe.wall_nanos`.
fn timed<T>(probe: &mut AnalysisProbe, f: impl FnOnce(&mut AnalysisProbe) -> T) -> T {
    let start = Instant::now();
    let out = f(probe);
    probe.wall_nanos = probe
        .wall_nanos
        .saturating_add(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    out
}

/// The paper's FEDCONS (Baruah, DATE 2015, Fig. 2): dedicated LS clusters
/// for high-density tasks, Baruah–Fisher first-fit for the rest.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedCons {
    /// Priority-list and partitioning knobs forwarded to the algorithm.
    pub config: FedConsConfig,
}

impl FedCons {
    /// FEDCONS with the given configuration.
    #[must_use]
    pub fn new(config: FedConsConfig) -> FedCons {
        FedCons { config }
    }
}

impl SchedulingPolicy for FedCons {
    fn name(&self) -> &'static str {
        "fedcons"
    }

    fn citation(&self) -> &'static str {
        "Baruah, \"The federated scheduling of constrained-deadline sporadic DAG task systems\", DATE 2015"
    }

    fn speedup_bound(&self) -> &'static str {
        "3 − 1/m (constrained-deadline speedup, paper Theorem 1)"
    }

    fn analyze(
        &self,
        system: &TaskSystem,
        m: u32,
        probe: &mut AnalysisProbe,
    ) -> Result<ScheduleOutcome, AdmissionFailure> {
        timed(probe, |p| fedcons_probed(system, m, self.config, p))
            .map(ScheduleOutcome::Federated)
            .map_err(Into::into)
    }
}

/// FEDCONS after tightening every `D > T` task to `D' = T` — the sound,
/// conservative extension to arbitrary-deadline systems.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedConsConstraining {
    /// Priority-list and partitioning knobs forwarded to the algorithm.
    pub config: FedConsConfig,
}

impl FedConsConstraining {
    /// Constraining FEDCONS with the given configuration.
    #[must_use]
    pub fn new(config: FedConsConfig) -> FedConsConstraining {
        FedConsConstraining { config }
    }
}

impl SchedulingPolicy for FedConsConstraining {
    fn name(&self) -> &'static str {
        "fedcons-constraining"
    }

    fn citation(&self) -> &'static str {
        "Baruah, DATE 2015 (Section V names arbitrary deadlines as open; tightening D' = min(D, T) is the standard sound reduction)"
    }

    fn speedup_bound(&self) -> &'static str {
        "3 − 1/m on the tightened system (pessimistic for tasks needing the (T, D] slack)"
    }

    fn analyze(
        &self,
        system: &TaskSystem,
        m: u32,
        probe: &mut AnalysisProbe,
    ) -> Result<ScheduleOutcome, AdmissionFailure> {
        timed(probe, |p| {
            fedcons_constraining_probed(system, m, self.config, p)
        })
        .map(ScheduleOutcome::Federated)
        .map_err(Into::into)
    }
}

/// The implicit-deadline federated algorithm of Li, Saifullah, Agrawal,
/// Gill & Lu (ECRTS 2014).
#[derive(Debug, Clone, Copy, Default)]
pub struct LiFederated;

impl SchedulingPolicy for LiFederated {
    fn name(&self) -> &'static str {
        "li-federated"
    }

    fn citation(&self) -> &'static str {
        "Li, Saifullah, Agrawal, Gill & Lu, \"Analysis of federated and global scheduling for parallel real-time tasks\", ECRTS 2014"
    }

    fn speedup_bound(&self) -> &'static str {
        "capacity augmentation 2 (implicit deadlines only)"
    }

    fn analyze(
        &self,
        system: &TaskSystem,
        m: u32,
        probe: &mut AnalysisProbe,
    ) -> Result<ScheduleOutcome, AdmissionFailure> {
        timed(probe, |p| li_federated_probed(system, m, p))
            .map(ScheduleOutcome::LiFederated)
            .map_err(Into::into)
    }
}

/// The global-EDF capacity-augmentation test of Li et al. (ECRTS 2013)
/// for implicit-deadline DAG systems: `U ≤ m/b` and `len_i ≤ T_i/b` with
/// `b = 4 − 2/m`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalEdfLi;

impl SchedulingPolicy for GlobalEdfLi {
    fn name(&self) -> &'static str {
        "gedf-li"
    }

    fn citation(&self) -> &'static str {
        "Li, Agrawal, Lu & Gill, \"Analysis of global EDF for parallel tasks\", ECRTS 2013"
    }

    fn speedup_bound(&self) -> &'static str {
        "capacity augmentation 4 − 2/m (implicit deadlines only)"
    }

    fn analyze(
        &self,
        system: &TaskSystem,
        m: u32,
        probe: &mut AnalysisProbe,
    ) -> Result<ScheduleOutcome, AdmissionFailure> {
        timed(probe, |_| {
            if let Some((task, _)) = system
                .iter()
                .find(|(_, t)| t.deadline_class() != DeadlineClass::Implicit)
            {
                return Err(AdmissionFailure::UnsupportedDeadlineClass {
                    task,
                    supported: DeadlineClass::Implicit,
                });
            }
            if global_edf_li_test(system, m) {
                Ok(ScheduleOutcome::Verdict)
            } else {
                Err(AdmissionFailure::ConditionViolated {
                    condition: "U ≤ m/(4 − 2/m) and len_i ≤ T_i/(4 − 2/m)".into(),
                })
            }
        })
    }
}

/// The sequentialising density baseline for constrained deadlines: run
/// each dag-job sequentially under global EDF and apply the
/// Goossens–Funk–Baruah condition `Σδ ≤ m − (m − 1)·δmax`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalEdfDensity;

impl SchedulingPolicy for GlobalEdfDensity {
    fn name(&self) -> &'static str {
        "gedf-density"
    }

    fn citation(&self) -> &'static str {
        "Goossens, Funk & Baruah, \"Priority-driven scheduling of periodic task systems on multiprocessors\", Real-Time Systems 25(2–3), 2003"
    }

    fn speedup_bound(&self) -> &'static str {
        "none (sufficient-only density condition, blind to intra-task parallelism)"
    }

    fn analyze(
        &self,
        system: &TaskSystem,
        m: u32,
        probe: &mut AnalysisProbe,
    ) -> Result<ScheduleOutcome, AdmissionFailure> {
        timed(probe, |_| {
            if global_edf_density_test(system, m) {
                Ok(ScheduleOutcome::Verdict)
            } else {
                Err(AdmissionFailure::ConditionViolated {
                    condition: "δmax ≤ 1 and Σδ ≤ m − (m − 1)·δmax (sequentialised jobs)".into(),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_core::fedcons::fedcons;
    use fedsched_dag::examples::{paper_example2, paper_figure1};
    use fedsched_dag::task::DagTask;
    use fedsched_dag::time::Duration;

    fn implicit(c: u64, t: u64) -> DagTask {
        DagTask::sequential(Duration::new(c), Duration::new(t), Duration::new(t)).unwrap()
    }

    #[test]
    fn fedcons_via_trait_is_byte_identical_to_direct_call() {
        let system = paper_example2(4);
        let policy = FedCons::default();
        let mut probe = AnalysisProbe::default();
        let outcome = policy.analyze(&system, 5, &mut probe).unwrap();
        let direct = fedcons(&system, 5, FedConsConfig::default()).unwrap();
        assert_eq!(outcome.as_federated(), Some(&direct));
        assert_eq!(
            serde_json::to_string(outcome.as_federated().unwrap()).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "serialized forms must agree byte for byte"
        );
    }

    #[test]
    fn trait_outcomes_and_probes_are_pool_size_independent() {
        // The determinism contract as seen through the policy layer: the
        // outcome and every non-timing probe counter must be identical
        // whether the analysis under the trait ran sequentially or fanned
        // out over an oversubscribed pool.
        let system = paper_example2(4);
        let baseline = fedsched_parallel::Pool::new(1).install(|| {
            let mut probe = AnalysisProbe::default();
            let outcome = FedCons::default().analyze(&system, 5, &mut probe);
            (outcome, probe.deterministic())
        });
        for width in [2, 8] {
            let run = fedsched_parallel::Pool::new(width).install(|| {
                let mut probe = AnalysisProbe::default();
                let outcome = FedCons::default().analyze(&system, 5, &mut probe);
                (outcome, probe.deterministic())
            });
            assert_eq!(run, baseline, "width {width}");
        }
    }

    #[test]
    fn trait_run_records_wall_time_and_analysis_cost() {
        let system = paper_example2(4);
        let mut probe = AnalysisProbe::default();
        FedCons::default().analyze(&system, 5, &mut probe).unwrap();
        assert_eq!(probe.ls_runs, 4);
        assert!(probe.wall_nanos > 0);
    }

    #[test]
    fn verdict_policies_report_condition_violations() {
        // δ = 1 per task, n = 4 tasks on m = 2: density condition fails.
        let system = paper_example2(4);
        let mut probe = AnalysisProbe::default();
        let e = GlobalEdfDensity
            .analyze(&system, 2, &mut probe)
            .unwrap_err();
        assert!(matches!(e, AdmissionFailure::ConditionViolated { .. }));
        // On m = 4 the condition Σδ = 4 ≤ 4 − 3·1 fails too.
        assert!(GlobalEdfDensity.analyze(&system, 4, &mut probe).is_err());
        // A light implicit system passes.
        let light: TaskSystem = [implicit(1, 8), implicit(1, 8)].into_iter().collect();
        assert_eq!(
            GlobalEdfDensity.analyze(&light, 2, &mut probe).unwrap(),
            ScheduleOutcome::Verdict
        );
        assert_eq!(
            GlobalEdfLi.analyze(&light, 4, &mut probe).unwrap(),
            ScheduleOutcome::Verdict
        );
    }

    #[test]
    fn gedf_li_reports_unsupported_class_for_constrained_systems() {
        let constrained: TaskSystem =
            [DagTask::sequential(Duration::new(1), Duration::new(4), Duration::new(8)).unwrap()]
                .into_iter()
                .collect();
        let mut probe = AnalysisProbe::default();
        let e = GlobalEdfLi
            .analyze(&constrained, 8, &mut probe)
            .unwrap_err();
        assert!(matches!(
            e,
            AdmissionFailure::UnsupportedDeadlineClass {
                supported: DeadlineClass::Implicit,
                ..
            }
        ));
    }

    #[test]
    fn li_federated_outcome_carries_clusters() {
        let system: TaskSystem = [implicit(4, 4), implicit(1, 4)].into_iter().collect();
        let mut probe = AnalysisProbe::default();
        let outcome = LiFederated.analyze(&system, 2, &mut probe).unwrap();
        let li = outcome.as_li_federated().unwrap();
        assert_eq!(li.clusters.len(), 1);
        assert_eq!(probe.ls_runs, 1);
        assert_eq!(probe.fits_calls, 1);
    }

    #[test]
    fn fedcons_constraining_accepts_what_fedcons_accepts() {
        let system: TaskSystem = [paper_figure1()].into_iter().collect();
        let mut probe = AnalysisProbe::default();
        let a = FedCons::default().analyze(&system, 2, &mut probe).unwrap();
        let b = FedConsConstraining::default()
            .analyze(&system, 2, &mut probe)
            .unwrap();
        assert_eq!(a, b);
    }
}
