//! Crash-safety suite against the real `fedsched` binary: kill -9 a
//! serving process mid-admission-burst, restart it on the same data
//! directory, and prove no acknowledged decision was lost; corrupt the
//! journal's tail and prove recovery truncates exactly the damage.

#![cfg(unix)]

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration as Ticks;
use fedsched_service::client::Client;
use fedsched_service::protocol::{Placement, Response};
use fedsched_service::state::{AdmissionConfig, AdmissionState};

const BIN: &str = env!("CARGO_BIN_EXE_fedsched");

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedsched-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn task() -> DagTask {
    DagTask::sequential(Ticks::new(1), Ticks::new(4), Ticks::new(8)).expect("valid task")
}

/// Spawns `fedsched serve -m 8 --addr 127.0.0.1:0 --shards 4
/// --data-dir <dir>` and parses the bound address from the startup
/// banner on stderr. Four shards exercise the sharded connection plane
/// (and its WAL sequencer) under the crash, where recovery must still
/// replay acknowledged decisions in ack order.
fn spawn_server(dir: &Path) -> (Child, String) {
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "-m",
            "8",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--shards",
            "4",
            "--fsync",
            "every",
            "--data-dir",
        ])
        .arg(dir)
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn fedsched serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let banner = lines
        .next()
        .expect("a banner line")
        .expect("readable banner");
    let addr = banner
        .split("admission server on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_owned();
    // Drain the rest of the banner so the child never blocks on a full
    // stderr pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn kill_dash_nine_mid_burst_loses_no_acknowledged_decision() {
    let dir = scratch_dir("kill9");
    let (child, addr) = spawn_server(&dir);
    let pid = child.id().to_string();

    // SIGKILL lands mid-burst: no flush, no destructor, no goodbye.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(120));
        let _ = Command::new("kill").args(["-9", &pid]).status();
    });

    // Admission burst until the process dies under us. Every acknowledged
    // response is recorded; `--fsync every` promises each one is on disk.
    let mut client = Client::connect(addr.as_str()).expect("connect to server");
    let mut acked: Vec<(u64, Placement)> = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..200_000 {
        match client.admit(&task()) {
            Ok(Response::Admitted {
                token, placement, ..
            }) => acked.push((token, placement)),
            Ok(Response::Rejected { .. }) => rejected += 1,
            Ok(other) => panic!("unexpected response {other:?}"),
            Err(_) => break, // the kill landed
        }
    }
    killer.join().expect("killer thread");
    let mut child = child;
    let status = child.wait().expect("reap the killed server");
    assert!(!status.success(), "the server must have died by signal");
    assert!(
        !acked.is_empty(),
        "the burst must land some admissions before the kill"
    );

    // Restart on the same directory. Boot replays the journal through the
    // real engine with outcome verification: a divergence from what was
    // acknowledged would refuse to serve at all.
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr.as_str()).expect("reconnect");
    let Response::Stats { snapshot } = client.stats().expect("stats") else {
        panic!("stats answered something else");
    };
    let admitted = snapshot.admitted_high + snapshot.admitted_low;
    let rejected_rec = snapshot.rejected_high + snapshot.rejected_low;
    assert!(
        admitted >= acked.len() as u64,
        "every acknowledged admission must survive: acked {} > recovered {admitted}",
        acked.len()
    );
    assert!(
        rejected_rec >= rejected,
        "every acknowledged rejection must survive: acked {rejected} > recovered {rejected_rec}"
    );
    assert!(
        admitted <= acked.len() as u64 + 1,
        "at most the one in-flight decision may exceed the acked set"
    );
    for (token, placement) in &acked {
        let Response::TaskInfo {
            placement: recovered,
            ..
        } = client.query(*token).expect("query")
        else {
            panic!("acked token {token} must be resident after recovery");
        };
        assert_eq!(
            recovered, *placement,
            "token {token} must keep its acknowledged placement"
        );
    }
    assert!(matches!(
        client.shutdown().expect("shutdown"),
        Response::ShuttingDown
    ));
    let _ = child.wait();

    // Never-crashed reference: the identical burst admitted into a fresh
    // in-memory engine produces the identical tokens and placements.
    let mut reference = AdmissionState::new(AdmissionConfig::new(8));
    for (token, placement) in &acked {
        let admitted = reference.admit(task()).expect("reference admits");
        assert_eq!(admitted.token, *token);
        assert_eq!(admitted.placement, *placement);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_wal_tail_is_truncated_and_reported() {
    let dir = scratch_dir("corrupt");
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr.as_str()).expect("connect");
    let mut tokens = Vec::new();
    for _ in 0..4 {
        let Response::Admitted { token, .. } = client.admit(&task()).expect("admit") else {
            panic!("seed admissions must land");
        };
        tokens.push(token);
    }
    assert!(matches!(
        client.shutdown().expect("shutdown"),
        Response::ShuttingDown
    ));
    let _ = child.wait();

    // Flip the last payload byte: the final frame's CRC no longer matches,
    // as after a sector-level tear or bit rot at the tail.
    let wal = dir.join(fedsched_durable::WAL_FILE);
    let mut bytes = std::fs::read(&wal).expect("read wal");
    *bytes.last_mut().expect("non-empty wal") ^= 0xff;
    std::fs::write(&wal, &bytes).expect("corrupt the tail");

    // `fedsched recover` reports the damage without serving anything.
    let out = Command::new(BIN)
        .args(["recover", "-m", "8", "--data-dir"])
        .arg(&dir)
        .output()
        .expect("run recover");
    assert!(out.status.success(), "recover must succeed: {out:?}");
    let report = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(report.contains("corrupt tail"), "report: {report}");
    assert!(report.contains("3 resident task(s)"), "report: {report}");

    // A restarted server keeps every record before the damage and only
    // the final, corrupted admission is gone.
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr.as_str()).expect("reconnect");
    let (lost, kept) = tokens.split_last().expect("four tokens");
    for token in kept {
        assert!(
            matches!(
                client.query(*token).expect("query"),
                Response::TaskInfo { .. }
            ),
            "token {token} precedes the corruption and must survive"
        );
    }
    assert!(
        matches!(
            client.query(*lost).expect("query"),
            Response::NotFound { .. }
        ),
        "the corrupted final admission must be truncated away"
    );
    assert!(matches!(
        client.shutdown().expect("shutdown"),
        Response::ShuttingDown
    ));
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
