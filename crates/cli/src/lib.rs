//! Command implementations for the `fedsched` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin wrapper: every subcommand is a
//! function here that takes parsed options and returns the text to print,
//! so integration tests drive the exact production code paths without
//! spawning processes.
//!
//! Task systems are interchanged as JSON (the serde form of
//! [`fedsched_dag::system::TaskSystem`]); `fedsched generate` emits them,
//! the other subcommands consume them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use core::fmt;
use std::path::PathBuf;

use fedsched_analysis::dbf::SequentialView;
use fedsched_analysis::partition::PartitionConfig;
use fedsched_analysis::probe::AnalysisProbe;
use fedsched_analysis::response_time::edf_response_times;
use fedsched_core::feasibility::{demand_load, necessary_feasible};
use fedsched_core::fedcons::{fedcons, FedConsConfig};
use fedsched_dag::system::TaskSystem;
use fedsched_dag::time::{Duration, Time};
use fedsched_durable::{
    DurableStore, FsyncPolicy, StoreConfig, DEFAULT_SNAPSHOT_BYTES, DEFAULT_SNAPSHOT_RECORDS,
};
use fedsched_gen::system::SystemConfig;
use fedsched_gen::{DeadlineTightness, Span, Topology};
use fedsched_graham::list::PriorityPolicy;
use fedsched_policy::{
    policy_by_name_with, policy_names, AdmissionFailure, ScheduleOutcome, SchedulingPolicy,
};
use fedsched_sim::federated::{simulate_federated_watched, ClusterDispatch};
use fedsched_sim::model::{ArrivalModel, ExecutionModel, SimConfig};
use fedsched_sim::watchdog::WatchdogReport;
use fedsched_telemetry::chrome::ChromeTraceBuilder;
use serde::Serialize;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command-line usage; the message explains what was expected.
    Usage(String),
    /// I/O failure reading or writing a file.
    Io(std::io::Error),
    /// Malformed task-system JSON.
    Json(serde_json::Error),
    /// The system was analysed and is not schedulable.
    NotSchedulable(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Json(e) => write!(f, "invalid task-system json: {e}"),
            CliError::NotSchedulable(msg) => write!(f, "not schedulable: {msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            CliError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

/// Options for `fedsched generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateOptions {
    /// Number of tasks.
    pub tasks: usize,
    /// Total utilization target.
    pub utilization: f64,
    /// Per-task utilization cap.
    pub max_task_utilization: f64,
    /// RNG seed.
    pub seed: u64,
    /// Topology keyword (`layered`, `gnp`, `fork-join`, `series-parallel`).
    pub topology: String,
    /// Generate implicit deadlines (`D = T`) instead of constrained.
    pub implicit: bool,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        GenerateOptions {
            tasks: 8,
            utilization: 3.0,
            max_task_utilization: 1.5,
            seed: 1,
            topology: "layered".to_owned(),
            implicit: false,
        }
    }
}

fn parse_topology(name: &str) -> Result<Topology, CliError> {
    match name {
        "layered" => Ok(Topology::Layered {
            layers: Span::new(2, 5),
            width: Span::new(1, 5),
            edge_probability: 0.3,
        }),
        "gnp" => Ok(Topology::ErdosRenyi {
            vertices: Span::new(5, 20),
            edge_probability: 0.2,
        }),
        "fork-join" => Ok(Topology::NestedForkJoin {
            depth: Span::new(1, 3),
            branching: Span::new(2, 3),
        }),
        "series-parallel" => Ok(Topology::SeriesParallel {
            operations: Span::new(3, 12),
        }),
        other => Err(CliError::Usage(format!(
            "unknown topology {other:?} (expected layered|gnp|fork-join|series-parallel)"
        ))),
    }
}

/// `fedsched generate`: produces a random task system as JSON.
///
/// # Errors
///
/// Usage error for an unknown topology or an infeasible utilization target.
pub fn generate(opts: &GenerateOptions) -> Result<String, CliError> {
    let tightness = if opts.implicit {
        DeadlineTightness::implicit()
    } else {
        DeadlineTightness::new(0.2, 1.0)
    };
    let system = SystemConfig::new(opts.tasks, opts.utilization)
        .with_max_task_utilization(opts.max_task_utilization)
        .with_topology(parse_topology(&opts.topology)?)
        .with_tightness(tightness)
        .generate_seeded(opts.seed)
        .ok_or_else(|| {
            CliError::Usage(format!(
                "utilization {} is infeasible for {} tasks with per-task cap {}",
                opts.utilization, opts.tasks, opts.max_task_utilization
            ))
        })?;
    Ok(serde_json::to_string_pretty(&system)?)
}

/// Parses a task system from JSON text.
///
/// # Errors
///
/// JSON error on malformed input.
pub fn parse_system(json: &str) -> Result<TaskSystem, CliError> {
    Ok(serde_json::from_str(json)?)
}

/// `fedsched info`: per-task metrics and system aggregates.
///
/// # Errors
///
/// JSON error on malformed input.
pub fn info(json: &str) -> Result<String, CliError> {
    use core::fmt::Write as _;
    let system = parse_system(json)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>6} {:>8} {:>8} {:>10} {:>10} {:>12} {:>6} {:>6}",
        "task", "|V|", "|E|", "vol", "len", "D", "T", "density", "par", "width"
    );
    for (id, t) in system.iter() {
        let stats = t.dag().stats();
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>6} {:>8} {:>8} {:>10} {:>10} {:>12} {:>6.2} {:>6} {}",
            id.to_string(),
            stats.vertices,
            stats.edges,
            t.volume().to_string(),
            t.longest_chain_length().to_string(),
            t.deadline().to_string(),
            t.period().to_string(),
            t.density().to_string(),
            stats.parallelism,
            stats.peak_width,
            if t.is_high_density() { "HIGH" } else { "" },
        );
    }
    let _ = writeln!(out, "n = {}", system.len());
    let _ = writeln!(
        out,
        "U_sum = {} ({:.3})",
        system.total_utilization(),
        system.total_utilization().to_f64()
    );
    let _ = writeln!(out, "class = {}", system.deadline_class());
    let _ = writeln!(
        out,
        "load  = {:.3}",
        demand_load(&system, 1_000_000).to_f64()
    );
    let _ = writeln!(out, "chains feasible = {}", system.all_chains_feasible());
    Ok(out)
}

/// Options for `fedsched analyze`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Processor count.
    pub processors: u32,
    /// Registry name of the analysis to run (`fedcons`,
    /// `fedcons-constraining`, `li-federated`, `gedf-li`, `gedf-density`).
    pub policy: String,
    /// LS priority policy for templates (FEDCONS-family policies only).
    pub priority: PriorityPolicy,
    /// Use the exact-EDF partition admission instead of `DBF*`.
    pub exact_partition: bool,
    /// Emit a machine-readable JSON report (verdict + analysis cost)
    /// instead of text. The report covers rejections too, so this mode
    /// always exits 0 on a completed analysis.
    pub json: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            processors: 8,
            policy: "fedcons".to_owned(),
            priority: PriorityPolicy::ListOrder,
            exact_partition: false,
            json: false,
        }
    }
}

fn fedcons_config(opts: &AnalyzeOptions) -> FedConsConfig {
    FedConsConfig {
        policy: opts.priority,
        partition: if opts.exact_partition {
            PartitionConfig::exact(fedsched_analysis::edf::DEFAULT_BUDGET)
        } else {
            PartitionConfig::approx()
        },
    }
}

fn lookup_policy(opts: &AnalyzeOptions) -> Result<Box<dyn SchedulingPolicy>, CliError> {
    policy_by_name_with(&opts.policy, fedcons_config(opts)).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown policy {:?} (expected {})",
            opts.policy,
            policy_names().join("|")
        ))
    })
}

/// `fedsched analyze --save`: runs the selected policy and returns the
/// admission artifact as JSON, suitable for shipping to a runtime. For
/// `fedcons`-family policies this is the bare
/// [`fedsched_core::fedcons::FederatedSchedule`] with every frozen
/// template (unchanged from earlier releases); other policies save their
/// [`ScheduleOutcome`].
///
/// # Errors
///
/// Same as [`analyze`].
pub fn analyze_to_json(json: &str, opts: &AnalyzeOptions) -> Result<String, CliError> {
    let system = parse_system(json)?;
    let policy = lookup_policy(opts)?;
    let mut probe = AnalysisProbe::default();
    match policy.analyze(&system, opts.processors, &mut probe) {
        Ok(outcome) => match outcome.as_federated() {
            Some(schedule) => Ok(serde_json::to_string_pretty(schedule)?),
            None => Ok(serde_json::to_string_pretty(&outcome)?),
        },
        Err(e) => Err(CliError::NotSchedulable(e.to_string())),
    }
}

/// Parses a `--priority` keyword (the LS priority policy for templates).
///
/// # Errors
///
/// Usage error for unknown keywords.
pub fn parse_priority(name: &str) -> Result<PriorityPolicy, CliError> {
    match name {
        "list" => Ok(PriorityPolicy::ListOrder),
        "cpf" => Ok(PriorityPolicy::CriticalPathFirst),
        "lwf" => Ok(PriorityPolicy::LongestWcetFirst),
        other => Err(CliError::Usage(format!(
            "unknown priority {other:?} (expected list|cpf|lwf)"
        ))),
    }
}

/// The `analyze --json` report: verdict, configuration, and analysis cost.
#[derive(Debug, Serialize)]
struct AnalyzeReport {
    policy: String,
    processors: u32,
    schedulable: bool,
    outcome: Option<ScheduleOutcome>,
    failure: Option<AdmissionFailure>,
    probe: AnalysisProbe,
}

fn render_outcome(
    system: &TaskSystem,
    policy: &dyn SchedulingPolicy,
    processors: u32,
    outcome: &ScheduleOutcome,
) -> String {
    use core::fmt::Write as _;
    match outcome {
        ScheduleOutcome::Federated(schedule) => {
            let mut out = schedule.to_string();
            // Per-task worst-case response times on each shared processor:
            // the actual slack behind the yes/no verdict.
            for (slot, ids) in schedule.partition().iter() {
                if ids.is_empty() {
                    continue;
                }
                let views: Vec<SequentialView> = ids
                    .iter()
                    .map(|&id| SequentialView::of(system.task(id)))
                    .collect();
                if let Ok(bounds) = edf_response_times(&views, 5_000_000) {
                    for (k, &id) in ids.iter().enumerate() {
                        let d = views[k].deadline;
                        let r = bounds.of(k);
                        let _ = writeln!(
                            out,
                            "  wcrt P{}: {id} ≤ {r} (D = {d}, slack {})",
                            schedule.shared_first() + slot as u32,
                            d.saturating_sub(r)
                        );
                    }
                }
            }
            out
        }
        ScheduleOutcome::LiFederated(schedule) => {
            let mut out = format!(
                "LiFederatedSchedule: {} dedicated clusters ({} processors), \
                 {} shared processors\n",
                schedule.clusters.len(),
                schedule.clusters.iter().map(|c| c.processors).sum::<u32>(),
                schedule.shared.len(),
            );
            let mut first = 0u32;
            for c in &schedule.clusters {
                let _ = writeln!(
                    out,
                    "  cluster P{first}..P{}: {}",
                    first + c.processors - 1,
                    c.task
                );
                first += c.processors;
            }
            for (k, ids) in schedule.shared.iter().enumerate() {
                let names: Vec<String> = ids.iter().map(ToString::to_string).collect();
                let _ = writeln!(out, "  shared P{}: {}", first + k as u32, names.join(" "));
            }
            out
        }
        ScheduleOutcome::Verdict => format!(
            "schedulable: {} accepts the system on {processors} processors \
             (verdict only, no static configuration)\n",
            policy.name()
        ),
    }
}

/// `fedsched analyze`: runs the selected policy and describes the outcome.
///
/// # Errors
///
/// JSON errors, plus [`CliError::NotSchedulable`] when the policy declines
/// (so shells can branch on the exit code) — except under
/// [`AnalyzeOptions::json`], where rejections are part of the report.
pub fn analyze(json: &str, opts: &AnalyzeOptions) -> Result<String, CliError> {
    let system = parse_system(json)?;
    let policy = lookup_policy(opts)?;
    let mut probe = AnalysisProbe::default();
    let result = policy.analyze(&system, opts.processors, &mut probe);
    if opts.json {
        let report = AnalyzeReport {
            policy: policy.name().to_owned(),
            processors: opts.processors,
            schedulable: result.is_ok(),
            outcome: result.as_ref().ok().cloned(),
            failure: result.as_ref().err().cloned(),
            probe,
        };
        return Ok(serde_json::to_string_pretty(&report)?);
    }
    match result {
        Ok(outcome) => {
            use core::fmt::Write as _;
            let mut out = render_outcome(&system, policy.as_ref(), opts.processors, &outcome);
            if !necessary_feasible(&system, opts.processors) {
                out.push_str("warning: necessary conditions flag an inconsistency\n");
            }
            let _ = writeln!(out, "analysis cost: {probe}");
            Ok(out)
        }
        Err(e) => Err(CliError::NotSchedulable(e.to_string())),
    }
}

/// Options for `fedsched simulate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulateOptions {
    /// Processor count.
    pub processors: u32,
    /// LS priority policy for cluster templates (must match what
    /// `analyze` used for the layouts to coincide).
    pub policy: PriorityPolicy,
    /// Simulation horizon in ticks.
    pub horizon: u64,
    /// Extra sporadic inter-arrival slack as a fraction of the period
    /// (0 = strictly periodic).
    pub sporadic_slack: f64,
    /// Minimum execution-time fraction (1 = always WCET).
    pub exec_min_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// If nonzero, render the first `trace_window` ticks as a Gantt chart.
    pub trace_window: u64,
}

impl Default for SimulateOptions {
    fn default() -> Self {
        SimulateOptions {
            processors: 8,
            policy: PriorityPolicy::ListOrder,
            horizon: 100_000,
            sporadic_slack: 0.0,
            exec_min_fraction: 1.0,
            seed: 1,
            trace_window: 0,
        }
    }
}

/// Shared single-run core of the `simulate` and `trace` subcommands:
/// admit, replay, and return the report, the full execution trace, and
/// the anomaly watchdog's counters.
fn run_federated_simulation(
    json: &str,
    opts: SimulateOptions,
) -> Result<
    (
        fedsched_core::fedcons::FederatedSchedule,
        fedsched_sim::model::SimReport,
        fedsched_sim::trace::ExecutionTrace,
        WatchdogReport,
    ),
    CliError,
> {
    if !(0.0..=10.0).contains(&opts.sporadic_slack) {
        return Err(CliError::Usage("sporadic slack must be in [0, 10]".into()));
    }
    if !(0.0 < opts.exec_min_fraction && opts.exec_min_fraction <= 1.0) {
        return Err(CliError::Usage(
            "execution fraction must be in (0, 1]".into(),
        ));
    }
    let system = parse_system(json)?;
    let fed_config = FedConsConfig {
        policy: opts.policy,
        ..FedConsConfig::default()
    };
    let schedule = fedcons(&system, opts.processors, fed_config)
        .map_err(|e| CliError::NotSchedulable(e.to_string()))?;
    let config = SimConfig {
        horizon: Duration::new(opts.horizon),
        arrivals: if opts.sporadic_slack > 0.0 {
            ArrivalModel::SporadicUniformSlack {
                max_extra_fraction: opts.sporadic_slack,
            }
        } else {
            ArrivalModel::Periodic
        },
        execution: if opts.exec_min_fraction < 1.0 {
            ExecutionModel::UniformFraction {
                min_fraction: opts.exec_min_fraction,
            }
        } else {
            ExecutionModel::Wcet
        },
        seed: opts.seed,
    };
    let (report, trace, watchdog) = simulate_federated_watched(
        &system,
        &schedule,
        config,
        ClusterDispatch::Template,
        opts.policy,
    );
    Ok((schedule, report, trace, watchdog))
}

fn render_simulation_text(
    schedule: &fedsched_core::fedcons::FederatedSchedule,
    report: &fedsched_sim::model::SimReport,
    trace: &fedsched_sim::trace::ExecutionTrace,
    trace_window: u64,
) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{schedule}");
    let _ = writeln!(out, "{report}");
    for miss in &report.misses {
        let _ = writeln!(out, "  MISS {miss}");
    }
    if trace_window > 0 {
        let _ = writeln!(
            out,
            "{}",
            trace.to_gantt(Time::ZERO, Time::new(trace_window))
        );
    }
    out
}

/// `fedsched simulate`: admits with FEDCONS and replays in the simulator.
///
/// # Errors
///
/// JSON errors, [`CliError::NotSchedulable`] if admission fails, and
/// usage errors for out-of-range fractions.
pub fn simulate(json: &str, opts: SimulateOptions) -> Result<String, CliError> {
    let (schedule, report, trace, _) = run_federated_simulation(json, opts)?;
    Ok(render_simulation_text(
        &schedule,
        &report,
        &trace,
        opts.trace_window,
    ))
}

/// `fedsched simulate --svg`: one simulation run returning both the text
/// report and an SVG Gantt chart of the first `window` ticks.
///
/// # Errors
///
/// Same as [`simulate`]; additionally a usage error if `window` is zero.
pub fn simulate_with_svg(
    json: &str,
    opts: SimulateOptions,
    window: u64,
) -> Result<(String, String), CliError> {
    if window == 0 {
        return Err(CliError::Usage("svg window must be positive".into()));
    }
    let (schedule, report, trace, _) = run_federated_simulation(json, opts)?;
    let text = render_simulation_text(&schedule, &report, &trace, opts.trace_window);
    let svg = trace.to_svg(Time::ZERO, Time::new(window));
    Ok((text, svg))
}

/// Output dialect of the `trace` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome / Perfetto `trace_events` JSON (load in `chrome://tracing`).
    Chrome,
    /// ASCII Gantt chart of the first `window` ticks.
    Gantt,
    /// One CSV row per execution slice.
    Csv,
}

/// Parses a `--format` keyword for the `trace` subcommand.
///
/// # Errors
///
/// Usage error for unknown keywords.
pub fn parse_trace_format(name: &str) -> Result<TraceFormat, CliError> {
    match name {
        "chrome" => Ok(TraceFormat::Chrome),
        "gantt" => Ok(TraceFormat::Gantt),
        "csv" => Ok(TraceFormat::Csv),
        other => Err(CliError::Usage(format!(
            "unknown trace format {other:?} (expected chrome|gantt|csv)"
        ))),
    }
}

/// `fedsched trace`: admits with FEDCONS, replays one watched simulation
/// run, and exports the execution trace in the requested dialect.
///
/// Chrome output also carries the anomaly watchdog's nonzero counters as
/// instant events at the end of the horizon; Gantt output appends one
/// `watchdog:` summary line; CSV is pure slice data.
///
/// # Errors
///
/// Same as [`simulate`], plus a usage error if `window` is zero for the
/// Gantt format.
pub fn trace_export(
    json: &str,
    opts: SimulateOptions,
    format: TraceFormat,
    window: u64,
) -> Result<String, CliError> {
    use core::fmt::Write as _;
    let (_, report, trace, watchdog) = run_federated_simulation(json, opts)?;
    match format {
        TraceFormat::Chrome => {
            let mut builder = ChromeTraceBuilder::new();
            builder.push_execution_trace(&trace);
            builder.push_watchdog(&watchdog, opts.horizon);
            let mut out = builder.to_json();
            out.push('\n');
            Ok(out)
        }
        TraceFormat::Gantt => {
            if window == 0 {
                return Err(CliError::Usage(
                    "gantt output needs --window <ticks>".into(),
                ));
            }
            let mut out = trace.to_gantt(Time::ZERO, Time::new(window));
            let _ = writeln!(out, "{report}");
            let _ = writeln!(out, "watchdog: {watchdog}");
            Ok(out)
        }
        TraceFormat::Csv => {
            let mut out = String::from("processor,task,vertex,start,end\n");
            for s in trace.segments() {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{}",
                    s.processor,
                    s.task.index(),
                    s.vertex.map(|v| v.to_string()).unwrap_or_default(),
                    s.start.ticks(),
                    s.end.ticks()
                );
            }
            Ok(out)
        }
    }
}

/// `fedsched import-stg`: converts a Standard Task Graph document into a
/// single-task system JSON with the given deadline and period.
///
/// # Errors
///
/// Usage error for malformed STG input or invalid task parameters.
pub fn import_stg(stg: &str, deadline: u64, period: u64) -> Result<String, CliError> {
    let dag = fedsched_dag::stg::parse_stg(stg)
        .map_err(|e| CliError::Usage(format!("invalid STG document: {e}")))?;
    let task =
        fedsched_dag::task::DagTask::new(dag, Duration::new(deadline), Duration::new(period))
            .map_err(|e| CliError::Usage(format!("invalid task parameters: {e}")))?;
    let system: TaskSystem = [task].into_iter().collect();
    Ok(serde_json::to_string_pretty(&system)?)
}

/// `fedsched dot`: Graphviz rendering of one task's DAG (or all of them).
///
/// # Errors
///
/// JSON errors, and a usage error for an out-of-range task index.
pub fn dot(json: &str, task: Option<usize>) -> Result<String, CliError> {
    let system = parse_system(json)?;
    match task {
        Some(i) => {
            let t = system.tasks().get(i).ok_or_else(|| {
                CliError::Usage(format!(
                    "task index {i} out of range (system has {} tasks)",
                    system.len()
                ))
            })?;
            Ok(t.dag().to_dot(&format!("task{i}")))
        }
        None => Ok(system
            .iter()
            .map(|(id, t)| t.dag().to_dot(&format!("task{}", id.index())))
            .collect::<Vec<_>>()
            .join("\n")),
    }
}

/// Options for `fedsched serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Platform size `m`.
    pub processors: u32,
    /// LS priority policy for cluster templates.
    pub policy: PriorityPolicy,
    /// Use the exact-EDF partition admission instead of `DBF*`.
    pub exact_partition: bool,
    /// Bind address (e.g. `127.0.0.1:7878`; port 0 picks a free port).
    pub addr: String,
    /// Worker-thread count.
    pub workers: usize,
    /// Shard count for the connection plane (`0` = one per available
    /// core). Admission outcomes are byte-identical at any shard count;
    /// sharding only changes how much of the plane runs concurrently.
    pub shards: usize,
    /// Connection plane (`--conn-model`): an epoll reactor per shard
    /// (default) or one thread per connection. Admission outcomes are
    /// byte-identical under either model.
    pub conn_model: fedsched_service::ConnModel,
    /// Capacity bound of the `MINPROCS` template cache (`0` = unbounded).
    /// Part of the durable configuration identity: `recover`/`compact`
    /// must pass the same cap the serving process used.
    pub template_cache_cap: usize,
    /// Telemetry ring-buffer capacity in events (0 disables the event
    /// stream; metrics and latency quantiles are always collected).
    pub telemetry_events: usize,
    /// Per-connection hardening: IO deadlines, frame cap, connection cap,
    /// and request budget.
    pub limits: fedsched_service::ConnectionLimits,
    /// Durability directory: when set, every admission decision is
    /// journaled there and the server recovers its state from the
    /// directory on boot. `None` keeps the server purely in-memory.
    pub data_dir: Option<PathBuf>,
    /// When to fsync the write-ahead log (`every`, `interval:<ms>`, or
    /// `never`); only meaningful with `data_dir`.
    pub fsync: FsyncPolicy,
    /// Install a snapshot after this many WAL records (with `data_dir`).
    pub snapshot_records: u64,
    /// Install a snapshot after this many WAL bytes (with `data_dir`).
    pub snapshot_bytes: u64,
    /// Blue/green warm start: import the template-cache section of the
    /// newest loadable snapshot in this (other server's) data directory.
    /// Placements, tokens, and counters are *not* taken over.
    pub handoff_from: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            processors: 8,
            policy: PriorityPolicy::ListOrder,
            exact_partition: false,
            addr: "127.0.0.1:7878".to_owned(),
            workers: 4,
            shards: 0,
            conn_model: fedsched_service::ConnModel::default(),
            template_cache_cap: 0,
            telemetry_events: 4096,
            limits: fedsched_service::ConnectionLimits::default(),
            data_dir: None,
            fsync: FsyncPolicy::Every,
            snapshot_records: DEFAULT_SNAPSHOT_RECORDS,
            snapshot_bytes: DEFAULT_SNAPSHOT_BYTES,
            handoff_from: None,
        }
    }
}

/// `fedsched serve`: binds the admission server and returns its handle, so
/// the binary can print the bound address before blocking in `join` and
/// tests can drive the exact production wiring in-process.
///
/// # Errors
///
/// I/O errors binding the address.
pub fn start_server(opts: &ServeOptions) -> Result<fedsched_service::ServerHandle, CliError> {
    let config = fedsched_service::ServerConfig {
        addr: opts.addr.clone(),
        workers: opts.workers,
        shards: opts.shards,
        conn_model: opts.conn_model,
        admission: admission_config(opts),
        limits: opts.limits,
        durability: opts.data_dir.as_ref().map(|dir| store_config(opts, dir)),
        handoff_from: opts.handoff_from.clone(),
    };
    Ok(fedsched_service::serve(&config)?)
}

/// The [`fedsched_service::AdmissionConfig`] a `serve`, `compact`, or
/// `recover` invocation describes. `compact`/`recover` must pass the same
/// `-m`/`--policy`/`--exact-partition` the serving process used: recovery
/// refuses to reinterpret a log under a different configuration.
fn admission_config(opts: &ServeOptions) -> fedsched_service::AdmissionConfig {
    fedsched_service::AdmissionConfig {
        processors: opts.processors,
        fedcons: FedConsConfig {
            policy: opts.policy,
            partition: if opts.exact_partition {
                PartitionConfig::exact(fedsched_analysis::edf::DEFAULT_BUDGET)
            } else {
                PartitionConfig::approx()
            },
        },
        telemetry_events: opts.telemetry_events,
        template_cache_cap: opts.template_cache_cap,
    }
}

fn store_config(opts: &ServeOptions, dir: &std::path::Path) -> StoreConfig {
    let mut config = StoreConfig::new(dir);
    config.fsync = opts.fsync;
    config.snapshot_every_records = opts.snapshot_records;
    config.snapshot_every_bytes = opts.snapshot_bytes;
    config
}

/// The directory a `compact`/`recover` invocation operates on, or a usage
/// error naming the subcommand when `--data-dir` was omitted.
fn require_data_dir<'a>(opts: &'a ServeOptions, command: &str) -> Result<&'a PathBuf, CliError> {
    opts.data_dir
        .as_ref()
        .ok_or_else(|| CliError::Usage(format!("{command} requires --data-dir <dir>")))
}

fn open_recovered(
    opts: &ServeOptions,
    dir: &std::path::Path,
) -> Result<
    (
        DurableStore,
        fedsched_durable::RecoveredLog,
        fedsched_service::AdmissionState,
        fedsched_service::ReplayReport,
    ),
    CliError,
> {
    let (store, recovered) = DurableStore::open(store_config(opts, dir))?;
    let (state, report) = fedsched_service::recover_state(admission_config(opts), &recovered)
        .map_err(|e| {
            CliError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("cannot recover {}: {e}", dir.display()),
            ))
        })?;
    Ok((store, recovered, state, report))
}

/// `fedsched recover`: opens a durability directory, rebuilds the
/// admission state exactly as `serve --data-dir` would on boot, and
/// reports what was recovered — without binding a socket. Use it to
/// sanity-check a data directory after a crash or before a migration.
///
/// # Errors
///
/// Usage error without `--data-dir`; I/O errors opening the store; an
/// `InvalidData` I/O error when the log does not replay cleanly under the
/// given configuration.
pub fn recover_store(opts: &ServeOptions) -> Result<String, CliError> {
    let dir = require_data_dir(opts, "recover")?.clone();
    let (store, recovered, state, report) = open_recovered(opts, &dir)?;
    let snapshot = state.snapshot();
    let mut out = String::new();
    use fmt::Write as _;
    let _ = writeln!(out, "recovered {}", dir.display());
    let _ = writeln!(
        out,
        "  wal: {} records in {} bytes ({} truncated{})",
        recovered.wal_report.records_recovered,
        store.wal_len(),
        recovered.wal_report.truncated_bytes,
        if recovered.wal_report.tail_was_corrupt {
            ", corrupt tail"
        } else {
            ""
        },
    );
    match report.snapshot_seq {
        Some(seq) => {
            let _ = writeln!(
                out,
                "  snapshot: seq {seq} + {} replayed records ({} stale snapshot(s) skipped)",
                report.replayed_records, report.snapshots_skipped
            );
        }
        None => {
            let _ = writeln!(
                out,
                "  snapshot: none, {} records replayed from genesis",
                report.replayed_records
            );
        }
    }
    let _ = writeln!(out, "  replay: {:.3} ms", report.replay_nanos as f64 / 1e6);
    let _ = writeln!(
        out,
        "  state: {} resident task(s), {} dedicated + {} shared processor(s) in use",
        state.resident_tasks(),
        state.dedicated_processors(),
        state.shared_processors(),
    );
    let _ = writeln!(
        out,
        "  stats: {} admitted, {} rejected, {} removed, cache {} hit(s) / {} miss(es)",
        snapshot.admitted_high + snapshot.admitted_low,
        snapshot.rejected_high + snapshot.rejected_low,
        snapshot.removed,
        snapshot.cache_hits,
        snapshot.cache_misses,
    );
    Ok(out)
}

/// `fedsched compact`: recovers the admission state from a durability
/// directory, writes one fresh snapshot of it, and truncates the
/// write-ahead log. Run it offline (the admission server must not be
/// serving from the same directory) to bound restart time after long
/// uptimes.
///
/// # Errors
///
/// As [`recover_store`], plus I/O errors writing the snapshot.
pub fn compact_store(opts: &ServeOptions) -> Result<String, CliError> {
    let dir = require_data_dir(opts, "compact")?.clone();
    let (mut store, _recovered, state, report) = open_recovered(opts, &dir)?;
    let compacted = store.compact(&state.export())?;
    let mut out = String::new();
    use fmt::Write as _;
    let _ = writeln!(
        out,
        "compacted {} ({} resident task(s), {} replayed record(s))",
        dir.display(),
        state.resident_tasks(),
        report.replayed_records
    );
    let _ = writeln!(
        out,
        "  snapshot: seq {} in {} bytes",
        compacted.snapshot_seq, compacted.snapshot_bytes
    );
    let _ = writeln!(
        out,
        "  wal: {} -> {} bytes, {} old file(s) removed",
        compacted.wal_bytes_before, compacted.wal_bytes_after, compacted.files_removed
    );
    Ok(out)
}

/// The multi-line effective-configuration banner `fedsched serve` logs at
/// startup: every knob after flag/default/environment resolution, so an
/// operator can read back exactly what the server is running with.
pub fn serve_banner(opts: &ServeOptions, handle: &fedsched_service::ServerHandle) -> String {
    let mut out = String::new();
    use fmt::Write as _;
    let _ = writeln!(
        out,
        "fedsched admission server on {} (m = {}, policy = {:?}, partition = {})",
        handle.local_addr(),
        opts.processors,
        opts.policy,
        if opts.exact_partition {
            "exact-edf"
        } else {
            "dbf-approx"
        },
    );
    let _ = writeln!(
        out,
        "  transport: {} worker(s), telemetry ring {} event(s), io-timeout {}, \
         idle-strikes {}, max-conns {}, max-frame-bytes {}, max-requests {}",
        opts.workers.max(1),
        opts.telemetry_events,
        match opts.limits.io_timeout {
            Some(t) => format!("{} ms", t.as_millis()),
            None => "off".to_owned(),
        },
        opts.limits.idle_strikes,
        opts.limits.max_connections,
        opts.limits.max_frame_bytes,
        opts.limits.max_requests_per_connection,
    );
    let shard_stats = handle.shard_stats();
    let _ = writeln!(
        out,
        "  connection plane: {}",
        match opts.conn_model {
            fedsched_service::ConnModel::Reactor => "epoll reactor per shard",
            fedsched_service::ConnModel::Threads => "one thread per connection",
        },
    );
    let _ = writeln!(
        out,
        "  admission plane: {} shard(s){} holding {} connection permit(s), template-cache cap {}",
        shard_stats.len(),
        if opts.shards == 0 {
            " (auto: one per core)"
        } else {
            ""
        },
        shard_stats.iter().map(|s| s.permits).sum::<u64>(),
        if opts.template_cache_cap == 0 {
            "unbounded".to_owned()
        } else {
            format!("{} entr(ies) per shard partition", opts.template_cache_cap)
        },
    );
    let _ = writeln!(
        out,
        "  slow-request log: {}",
        match opts.limits.slow_request {
            Some(t) => format!("over {} ms of processing time", t.as_millis()),
            None => "off".to_owned(),
        },
    );
    let _ = writeln!(
        out,
        "  analysis threads: {} ({})",
        fedsched_parallel::width(),
        match std::env::var("FEDSCHED_THREADS") {
            Ok(v) => format!("FEDSCHED_THREADS={v}"),
            Err(_) => "FEDSCHED_THREADS unset".to_owned(),
        },
    );
    match &opts.data_dir {
        None => {
            let _ = writeln!(out, "  durability: off (in-memory only)");
        }
        Some(dir) => {
            let _ = writeln!(
                out,
                "  durability: {} (fsync {}, snapshot every {} records / {} bytes)",
                dir.display(),
                opts.fsync,
                opts.snapshot_records,
                opts.snapshot_bytes,
            );
            if let Some(boot) = handle.boot_report() {
                let _ = writeln!(
                    out,
                    "  recovered: {} replayed record(s){} in {:.3} ms{}",
                    boot.replayed_records,
                    match boot.snapshot_seq {
                        Some(seq) => format!(" after snapshot seq {seq}"),
                        None => String::new(),
                    },
                    boot.replay_nanos as f64 / 1e6,
                    if boot.truncated_bytes > 0 {
                        format!(" ({} torn byte(s) truncated)", boot.truncated_bytes)
                    } else {
                        String::new()
                    },
                );
            }
        }
    }
    if let (Some(dir), Some(absorbed)) = (&opts.handoff_from, handle.handoff_absorbed()) {
        let _ = writeln!(
            out,
            "  handoff: {} template-cache entr{} imported from {}",
            absorbed,
            if absorbed == 1 { "y" } else { "ies" },
            dir.display(),
        );
    }
    out
}

/// Options for `fedsched loadgen`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenOptions {
    /// Target server (`None` spawns a throwaway in-process server — the
    /// CI mode, no external orchestration needed).
    pub addr: Option<String>,
    /// Platform size for the spawned server (ignored with `addr`).
    pub processors: u32,
    /// CI shape (seconds of wall clock) instead of the benchmark shape.
    pub quick: bool,
    /// Where the machine-readable report is written.
    pub out: String,
    /// Override the preset's connection count.
    pub connections: Option<usize>,
    /// Override the preset's first offered rate (requests/second).
    pub rate: Option<f64>,
    /// Override the preset's between-rung growth factor.
    pub growth: Option<f64>,
    /// Override the preset's rung cap.
    pub steps: Option<usize>,
    /// Override the preset's per-rung warmup (milliseconds).
    pub warmup_ms: Option<u64>,
    /// Override the preset's per-rung measured window (milliseconds).
    pub measure_ms: Option<u64>,
    /// Arrival process (`poisson` or `fixed`).
    pub process: Option<String>,
    /// Arrival-timeline seed.
    pub seed: Option<u64>,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            addr: None,
            processors: 8,
            quick: false,
            out: "BENCH_service.json".to_owned(),
            connections: None,
            rate: None,
            growth: None,
            steps: None,
            warmup_ms: None,
            measure_ms: None,
            process: None,
            seed: None,
        }
    }
}

/// `fedsched loadgen`: open-loop latency sweep against an admission
/// server — a running one (`--addr`) or a spawned in-process one —
/// writing the `BENCH_service.json` report next to the human summary.
///
/// # Errors
///
/// Usage errors for bad overrides; I/O errors spawning the server or
/// writing the report.
pub fn loadgen(opts: &LoadgenOptions) -> Result<String, CliError> {
    let mut config = if opts.quick {
        fedsched_loadgen::SweepConfig::quick()
    } else {
        fedsched_loadgen::SweepConfig::full()
    };
    if let Some(n) = opts.connections {
        config.load.connections = n.max(1);
    }
    if let Some(r) = opts.rate {
        if r <= 0.0 {
            return Err(CliError::Usage("--rate must be positive".into()));
        }
        config.start_rps = r;
    }
    if let Some(g) = opts.growth {
        if g <= 1.0 {
            return Err(CliError::Usage("--growth must be above 1.0".into()));
        }
        config.growth = g;
    }
    if let Some(n) = opts.steps {
        config.max_steps = n.max(1);
    }
    if let Some(ms) = opts.warmup_ms {
        config.load.warmup = core::time::Duration::from_millis(ms);
    }
    if let Some(ms) = opts.measure_ms {
        if ms == 0 {
            return Err(CliError::Usage("--duration-ms must be positive".into()));
        }
        config.load.measure = core::time::Duration::from_millis(ms);
    }
    if let Some(p) = &opts.process {
        config.load.process =
            fedsched_loadgen::ArrivalProcess::parse(p).map_err(CliError::Usage)?;
    }
    if let Some(s) = opts.seed {
        config.load.seed = s;
    }

    let mut scaling = if opts.quick {
        fedsched_loadgen::ScalingConfig::quick()
    } else {
        fedsched_loadgen::ScalingConfig::full()
    };
    scaling.load.warmup = config.load.warmup;
    scaling.load.measure = config.load.measure;
    scaling.load.process = config.load.process;
    scaling.load.seed = config.load.seed;
    if let Some(n) = opts.connections {
        // An explicit --connections caps the ladder too: the operator is
        // sizing the plane, so the ladder tops out exactly there.
        scaling.ladder.retain(|&c| c < n.max(1));
        scaling.ladder.push(n.max(1));
    }

    // Spawn mode binds an ephemeral port; the sweep is the only client.
    // The spawned server's connection cap clears the widest rung asked
    // of it, so the scaling ladder measures the plane, not the gate.
    let spawned = match &opts.addr {
        Some(_) => None,
        None => {
            let mut serve_opts = ServeOptions {
                addr: "127.0.0.1:0".to_owned(),
                processors: opts.processors,
                ..ServeOptions::default()
            };
            let widest = scaling
                .ladder
                .iter()
                .copied()
                .max()
                .unwrap_or(0)
                .max(config.load.connections);
            serve_opts.limits.max_connections = serve_opts.limits.max_connections.max(widest + 8);
            Some(start_server(&serve_opts)?)
        }
    };
    let addr = match (&opts.addr, &spawned) {
        (Some(addr), _) => addr.clone(),
        (None, Some(handle)) => handle.local_addr().to_string(),
        (None, None) => unreachable!("spawned when no addr was given"),
    };

    let mut report = fedsched_loadgen::run_sweep(&addr, &config, opts.quick);
    report.connection_scaling = Some(fedsched_loadgen::run_connection_scaling(&addr, &scaling));

    if let Some(handle) = spawned {
        let mut client = fedsched_service::Client::connect(handle.local_addr())?;
        client.shutdown()?;
        handle.join();
    }

    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| CliError::Usage(format!("report serialization failed: {e}")))?;
    std::fs::write(&opts.out, json)?;
    let mut out = fedsched_loadgen::render_report(&report);
    use fmt::Write as _;
    let _ = writeln!(out, "wrote {}", opts.out);
    Ok(out)
}

/// One `fedsched client` action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientAction {
    /// Admit every task of a system JSON (reporting one line per task).
    Admit {
        /// The system JSON text.
        json: String,
        /// Restrict to one task index of the system.
        task: Option<usize>,
        /// Correlation trace id stamped on each request (echoed in the
        /// response and on every analysis span server-side). Multi-task
        /// admissions get consecutive ids starting here.
        trace: Option<u64>,
    },
    /// Remove an admitted task by token.
    Remove {
        /// The token to remove.
        token: u64,
    },
    /// Query an admitted task's placement by token.
    Query {
        /// The token to query.
        token: u64,
    },
    /// Fetch server counters.
    Stats,
    /// Fetch server counters in Prometheus text exposition format.
    StatsPrometheus,
    /// Stop the server.
    Shutdown,
}

fn render_placement(placement: &fedsched_service::Placement) -> String {
    match placement {
        fedsched_service::Placement::Dedicated {
            first_processor,
            processors,
        } => format!(
            "dedicated cluster P{first_processor}..P{}",
            first_processor + processors - 1
        ),
        fedsched_service::Placement::Shared { processor } => {
            format!("shared processor P{processor}")
        }
    }
}

fn render_timing(timing: fedsched_service::RequestTiming) -> String {
    format!(
        " (server: read {}µs, parse {}µs, cache {}µs, analysis {}µs, wal {}µs)",
        timing.read_us, timing.parse_us, timing.cache_us, timing.analysis_us, timing.wal_us
    )
}

fn render_response(response: &fedsched_service::Response) -> String {
    use fedsched_service::Response;
    match response {
        Response::Admitted {
            token,
            placement,
            cache_hit,
            trace_id,
            timing,
        } => format!(
            "admitted token={token} on {}{}{}{}",
            render_placement(placement),
            if *cache_hit { " (cached sizing)" } else { "" },
            trace_id
                .map(|t| format!(" [trace:{t}]"))
                .unwrap_or_default(),
            timing.map(render_timing).unwrap_or_default()
        ),
        Response::Rejected {
            reason,
            trace_id,
            timing,
        } => format!(
            "rejected: {reason}{}{}",
            trace_id
                .map(|t| format!(" [trace:{t}]"))
                .unwrap_or_default(),
            timing.map(render_timing).unwrap_or_default()
        ),
        Response::Removed { token, migrated } => {
            format!("removed token={token} ({migrated} tasks migrated)")
        }
        Response::TaskInfo { token, placement } => {
            format!("token={token} on {}", render_placement(placement))
        }
        Response::NotFound { token } => format!("token={token} not found"),
        Response::Stats { snapshot } => {
            let quantile = |q: Option<u64>| match q {
                Some(v) => format!("≤{v}µs"),
                None => "n/a".to_owned(),
            };
            format!(
                "platform: {} processors ({} dedicated, {} shared), {} resident tasks\n\
                 admitted: {} high / {} low; rejected: {} high / {} low\n\
                 removed: {} ({} replay anomalies)\n\
                 template cache: {} hits / {} misses ({} shapes)\n\
                 admit decisions sampled: {} (p50 {}, p90 {}, p99 {})\n\
                 analysis cost: {}",
                snapshot.processors,
                snapshot.dedicated_processors,
                snapshot.shared_processors,
                snapshot.resident_tasks,
                snapshot.admitted_high,
                snapshot.admitted_low,
                snapshot.rejected_high,
                snapshot.rejected_low,
                snapshot.removed,
                snapshot.remove_anomalies,
                snapshot.cache_hits,
                snapshot.cache_misses,
                snapshot.cache_entries,
                snapshot.latency_buckets_us.iter().sum::<u64>(),
                quantile(snapshot.latency_p50_us),
                quantile(snapshot.latency_p90_us),
                quantile(snapshot.latency_p99_us),
                snapshot.probe,
            )
        }
        Response::Metrics { text } => text.clone(),
        Response::ShuttingDown => "server shutting down".to_owned(),
        Response::Busy { retry_after_ms } => {
            format!("server busy (retry after {retry_after_ms} ms)")
        }
        Response::Error { message } => format!("server error: {message}"),
    }
}

/// `fedsched client`: performs one action against a running server and
/// renders the response(s) as text, under the default client deadlines.
///
/// # Errors
///
/// Connection and protocol I/O errors, plus JSON errors for `Admit` input.
pub fn client_command(addr: &str, action: &ClientAction) -> Result<String, CliError> {
    client_command_with(addr, action, None)
}

/// [`client_command`] with an explicit call deadline: `timeout_ms` becomes
/// both the connect and per-call IO deadline (`Some(0)` disables deadlines
/// entirely; `None` keeps the [`fedsched_service::ClientConfig`] defaults).
///
/// # Errors
///
/// Connection and protocol I/O errors — including `WouldBlock`/`TimedOut`
/// when a stalled server outlasts the deadline — plus JSON errors for
/// `Admit` input.
pub fn client_command_with(
    addr: &str,
    action: &ClientAction,
    timeout_ms: Option<u64>,
) -> Result<String, CliError> {
    use core::fmt::Write as _;
    // Validate admit input before dialing the server.
    let admit_tasks: Option<Vec<fedsched_dag::task::DagTask>> = match action {
        ClientAction::Admit { json, task, .. } => {
            let system = parse_system(json)?;
            Some(match task {
                Some(i) => vec![system
                    .tasks()
                    .get(*i)
                    .ok_or_else(|| {
                        CliError::Usage(format!(
                            "task index {i} out of range (system has {} tasks)",
                            system.len()
                        ))
                    })?
                    .clone()],
                None => system.tasks().to_vec(),
            })
        }
        _ => None,
    };
    let mut config = fedsched_service::ClientConfig::default();
    match timeout_ms {
        Some(0) => {
            config.connect_timeout = None;
            config.io_timeout = None;
        }
        Some(ms) => {
            let deadline = core::time::Duration::from_millis(ms);
            config.connect_timeout = Some(deadline);
            config.io_timeout = Some(deadline);
        }
        None => {}
    }
    let mut client = fedsched_service::Client::connect_with(addr, config)?;
    let mut out = String::new();
    match action {
        ClientAction::Admit { trace, .. } => {
            for (k, t) in admit_tasks.unwrap_or_default().iter().enumerate() {
                let response = match trace {
                    Some(base) => client.admit_traced(t, base + k as u64)?,
                    None => client.admit(t)?,
                };
                let _ = writeln!(out, "{}", render_response(&response));
            }
        }
        ClientAction::Remove { token } => {
            let _ = writeln!(out, "{}", render_response(&client.remove(*token)?));
        }
        ClientAction::Query { token } => {
            let _ = writeln!(out, "{}", render_response(&client.query(*token)?));
        }
        ClientAction::Stats => {
            let _ = writeln!(out, "{}", render_response(&client.stats()?));
        }
        ClientAction::StatsPrometheus => {
            // Exposition text already ends in a newline; print verbatim.
            out.push_str(&render_response(&client.stats_prometheus()?));
        }
        ClientAction::Shutdown => {
            let _ = writeln!(out, "{}", render_response(&client.shutdown()?));
        }
    }
    Ok(out)
}

/// The usage string shown by `fedsched --help` and on bad invocations.
pub const USAGE: &str = "\
fedsched — federated scheduling of constrained-deadline sporadic DAG tasks

USAGE:
  fedsched generate [--tasks N] [--utilization U] [--max-task-u U]
                    [--seed S] [--topology layered|gnp|fork-join|series-parallel]
                    [--implicit]                       # JSON system to stdout
  fedsched info     <system.json>                      # per-task metrics
  fedsched analyze  <system.json> -m M
                    [--policy fedcons|fedcons-constraining|li-federated|gedf-li|gedf-density]
                    [--priority list|cpf|lwf] [--exact-partition]
                    [--json] [--save schedule.json]
  fedsched simulate <system.json> -m M [--policy list|cpf|lwf] [--horizon H]
                    [--sporadic F] [--exec-min F] [--seed S] [--trace N]
                    [--svg out.svg]
  fedsched trace    <system.json> -m M --format chrome|gantt|csv
                    [--policy list|cpf|lwf] [--horizon H] [--sporadic F]
                    [--exec-min F] [--seed S] [--window N] [--out FILE]
                    # watched run: chrome://tracing JSON, ASCII Gantt, or CSV
  fedsched import-stg <graph.stg> --deadline D --period T   # STG -> system JSON
  fedsched dot      <system.json> [--task K]           # Graphviz to stdout
  fedsched serve    -m M [--policy list|cpf|lwf] [--exact-partition]
                    [--addr HOST:PORT] [--workers N] [--shards N]
                    [--conn-model reactor|threads]
                    [--template-cache-cap N] [--telemetry N]
                    [--io-timeout-ms MS] [--idle-strikes N] [--max-conns N]
                    [--max-frame-bytes N] [--max-requests N] [--slow-ms MS]
                    [--data-dir DIR] [--fsync every|interval:MS|never]
                    [--snapshot-records N] [--snapshot-bytes N]
                    [--handoff-from DIR]
                    # admission server; GET /metrics on the same port;
                    # --shards 0 (default) runs one connection shard per
                    # core; decisions are byte-identical at any count;
                    # --conn-model reactor (default) multiplexes every
                    # connection on one epoll loop per shard; threads
                    # keeps the per-connection handler threads;
                    # --template-cache-cap bounds the MINPROCS cache
                    # (0 = unbounded) and is part of the durable config;
                    # --io-timeout-ms 0 disables connection deadlines;
                    # --slow-ms logs one line per request whose server-side
                    # processing exceeds MS (0 disables);
                    # --data-dir journals decisions and recovers on boot;
                    # --handoff-from warm-starts the template cache from
                    # another server's snapshot (blue/green restarts)
  fedsched loadgen  [--addr HOST:PORT | -m M] [--quick] [--out FILE]
                    [--connections N] [--rate RPS] [--growth F] [--steps N]
                    [--warmup-ms MS] [--duration-ms MS]
                    [--process poisson|fixed] [--seed S]
                    # open-loop latency sweep (coordinated-omission-safe):
                    # finds the max sustainable request rate and writes
                    # BENCH_service.json; without --addr it spawns an
                    # in-process server on an ephemeral port
  fedsched recover  -m M --data-dir DIR [--policy list|cpf|lwf]
                    [--exact-partition] [--template-cache-cap N]
                    # replay a journal, report state
  fedsched compact  -m M --data-dir DIR [--policy list|cpf|lwf]
                    [--exact-partition] [--template-cache-cap N]
                    # fold the journal into a snapshot
  fedsched client   admit <system.json> [--task K] [--trace-id T]
                    [--addr HOST:PORT] [--timeout-ms MS]
  fedsched client   remove|query --token T [--addr HOST:PORT] [--timeout-ms MS]
  fedsched client   stats [--format prometheus] [--addr HOST:PORT] [--timeout-ms MS]
  fedsched client   shutdown [--addr HOST:PORT] [--timeout-ms MS]

Global flags: --threads N sizes the analysis thread pool for any
subcommand (default: FEDSCHED_THREADS, else all cores; analysis results
are byte-identical at every pool size).

Exit codes: 0 ok, 1 usage/io error, 2 not schedulable
(`analyze --json` reports rejections in the JSON and exits 0).
";

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> String {
        generate(&GenerateOptions::default()).expect("default generation succeeds")
    }

    #[test]
    fn generate_roundtrips_through_parse() {
        let json = sample_json();
        let system = parse_system(&json).unwrap();
        assert_eq!(system.len(), 8);
        assert!(system.all_chains_feasible());
    }

    #[test]
    fn generate_is_deterministic() {
        assert_eq!(sample_json(), sample_json());
    }

    #[test]
    fn generate_rejects_unknown_topology() {
        let opts = GenerateOptions {
            topology: "mesh".into(),
            ..GenerateOptions::default()
        };
        assert!(matches!(generate(&opts), Err(CliError::Usage(_))));
    }

    #[test]
    fn generate_rejects_infeasible_target() {
        let opts = GenerateOptions {
            tasks: 2,
            utilization: 10.0,
            max_task_utilization: 1.0,
            ..GenerateOptions::default()
        };
        assert!(matches!(generate(&opts), Err(CliError::Usage(_))));
    }

    #[test]
    fn info_reports_aggregates() {
        let out = info(&sample_json()).unwrap();
        assert!(out.contains("U_sum"));
        assert!(out.contains("n = 8"));
        assert!(out.contains("constrained-deadline"));
    }

    #[test]
    fn analyze_accepts_with_enough_processors() {
        let out = analyze(&sample_json(), &AnalyzeOptions::default()).unwrap();
        assert!(out.contains("FederatedSchedule"));
        assert!(out.contains("analysis cost:"));
    }

    #[test]
    fn analyze_rejects_with_too_few_processors() {
        let err = analyze(
            &sample_json(),
            &AnalyzeOptions {
                processors: 1,
                ..AnalyzeOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CliError::NotSchedulable(_)));
    }

    #[test]
    fn analyze_exact_partition_mode_works() {
        let out = analyze(
            &sample_json(),
            &AnalyzeOptions {
                priority: PriorityPolicy::CriticalPathFirst,
                exact_partition: true,
                ..AnalyzeOptions::default()
            },
        )
        .unwrap();
        assert!(out.contains("FederatedSchedule"));
    }

    #[test]
    fn analyze_runs_every_registry_policy_by_name() {
        // Constrained-deadline input: the FEDCONS family analyses it, the
        // implicit-deadline-only policies reject with a typed failure.
        let json = sample_json();
        for name in fedsched_policy::policy_names() {
            let result = analyze(
                &json,
                &AnalyzeOptions {
                    policy: name.to_owned(),
                    ..AnalyzeOptions::default()
                },
            );
            match name {
                "fedcons" | "fedcons-constraining" => {
                    assert!(result.unwrap().contains("FederatedSchedule"));
                }
                _ => assert!(
                    matches!(result, Ok(_) | Err(CliError::NotSchedulable(_))),
                    "{name} must complete, got a usage/io error"
                ),
            }
        }
        assert!(matches!(
            analyze(
                &json,
                &AnalyzeOptions {
                    policy: "no-such".into(),
                    ..AnalyzeOptions::default()
                }
            ),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn analyze_json_reports_verdict_and_probe_both_ways() {
        let json = sample_json();
        let accepted = analyze(
            &json,
            &AnalyzeOptions {
                json: true,
                ..AnalyzeOptions::default()
            },
        )
        .unwrap();
        assert!(accepted.contains("\"schedulable\": true"));
        assert!(accepted.contains("\"probe\""));
        assert!(accepted.contains("\"ls_runs\""));
        let rejected = analyze(
            &json,
            &AnalyzeOptions {
                processors: 1,
                json: true,
                ..AnalyzeOptions::default()
            },
        )
        .unwrap();
        assert!(rejected.contains("\"schedulable\": false"));
        assert!(rejected.contains("\"failure\""));
    }

    #[test]
    fn analyze_li_federated_needs_implicit_deadlines() {
        let implicit = generate(&GenerateOptions {
            implicit: true,
            ..GenerateOptions::default()
        })
        .unwrap();
        let out = analyze(
            &implicit,
            &AnalyzeOptions {
                policy: "li-federated".into(),
                processors: 16,
                ..AnalyzeOptions::default()
            },
        )
        .unwrap();
        assert!(out.contains("LiFederatedSchedule"));
    }

    #[test]
    fn simulate_reports_clean_run_and_trace() {
        let out = simulate(
            &sample_json(),
            SimulateOptions {
                processors: 8,
                horizon: 20_000,
                sporadic_slack: 0.3,
                exec_min_fraction: 0.5,
                seed: 9,
                trace_window: 60,
                ..SimulateOptions::default()
            },
        )
        .unwrap();
        assert!(out.contains("0 misses"));
        assert!(out.contains("P0:"));
    }

    #[test]
    fn simulate_validates_fractions() {
        let opts = SimulateOptions {
            exec_min_fraction: 0.0,
            ..SimulateOptions::default()
        };
        assert!(matches!(
            simulate(&sample_json(), opts),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn dot_renders_single_and_all() {
        let json = sample_json();
        let one = dot(&json, Some(0)).unwrap();
        assert!(one.starts_with("digraph task0"));
        let all = dot(&json, None).unwrap();
        assert_eq!(all.matches("digraph").count(), 8);
        assert!(matches!(dot(&json, Some(99)), Err(CliError::Usage(_))));
    }

    #[test]
    fn priority_parsing() {
        assert_eq!(parse_priority("list").unwrap(), PriorityPolicy::ListOrder);
        assert_eq!(
            parse_priority("cpf").unwrap(),
            PriorityPolicy::CriticalPathFirst
        );
        assert_eq!(
            parse_priority("lwf").unwrap(),
            PriorityPolicy::LongestWcetFirst
        );
        assert!(parse_priority("edf").is_err());
    }

    #[test]
    fn simulate_with_svg_renders_both_outputs_from_one_run() {
        let (text, svg) = simulate_with_svg(
            &sample_json(),
            SimulateOptions {
                processors: 8,
                horizon: 5_000,
                ..SimulateOptions::default()
            },
            200,
        )
        .unwrap();
        assert!(text.contains("0 misses"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("execution trace"));
        assert!(matches!(
            simulate_with_svg(&sample_json(), SimulateOptions::default(), 0),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_export_emits_all_three_dialects() {
        let json = sample_json();
        let opts = SimulateOptions {
            processors: 8,
            horizon: 2_000,
            ..SimulateOptions::default()
        };
        let chrome = trace_export(&json, opts, TraceFormat::Chrome, 0).unwrap();
        let doc: fedsched_telemetry::chrome::ChromeTraceDocument =
            serde_json::from_str(&chrome).unwrap();
        assert!(!doc.traceEvents.is_empty());
        assert!(doc.traceEvents.iter().all(|e| e.cat != "analysis"));

        let gantt = trace_export(&json, opts, TraceFormat::Gantt, 80).unwrap();
        assert!(gantt.contains("P0:"));
        assert!(gantt.contains("watchdog: misses=0"));
        assert!(matches!(
            trace_export(&json, opts, TraceFormat::Gantt, 0),
            Err(CliError::Usage(_))
        ));

        let csv = trace_export(&json, opts, TraceFormat::Csv, 0).unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("processor,task,vertex,start,end"));
        let row = lines.next().expect("at least one slice");
        assert_eq!(row.split(',').count(), 5);
    }

    #[test]
    fn trace_format_parsing() {
        assert_eq!(parse_trace_format("chrome").unwrap(), TraceFormat::Chrome);
        assert_eq!(parse_trace_format("gantt").unwrap(), TraceFormat::Gantt);
        assert_eq!(parse_trace_format("csv").unwrap(), TraceFormat::Csv);
        assert!(parse_trace_format("perfetto").is_err());
    }

    #[test]
    fn analyze_to_json_roundtrips() {
        use fedsched_core::fedcons::FederatedSchedule;
        let out = analyze_to_json(&sample_json(), &AnalyzeOptions::default()).unwrap();
        let schedule: FederatedSchedule = serde_json::from_str(&out).unwrap();
        assert_eq!(schedule.total_processors(), 8);
    }

    #[test]
    fn import_stg_roundtrips() {
        let stg = "2\n0 0 0\n1 4 1 0\n2 6 1 1\n3 0 1 2\n";
        let json = import_stg(stg, 15, 20).unwrap();
        let system = parse_system(&json).unwrap();
        assert_eq!(system.len(), 1);
        assert_eq!(system.tasks()[0].volume().ticks(), 10);
        assert_eq!(system.tasks()[0].longest_chain_length().ticks(), 10);
        // Chain longer than deadline: rejected at task construction? No —
        // len 10 ≤ D 15 here; an invalid deadline is a usage error:
        assert!(matches!(import_stg(stg, 0, 20), Err(CliError::Usage(_))));
        assert!(matches!(import_stg("nope", 5, 5), Err(CliError::Usage(_))));
    }

    #[test]
    fn malformed_json_is_reported() {
        assert!(matches!(info("{not json"), Err(CliError::Json(_))));
    }

    #[test]
    fn serve_and_client_roundtrip() {
        let handle = start_server(&ServeOptions {
            processors: 8,
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeOptions::default()
        })
        .unwrap();
        let addr = handle.local_addr().to_string();
        let admit = client_command(
            &addr,
            &ClientAction::Admit {
                json: sample_json(),
                task: None,
                trace: Some(100),
            },
        )
        .unwrap();
        assert_eq!(admit.lines().count(), 8, "one line per admitted task");
        assert!(admit.contains("admitted token=0"));
        assert!(admit.contains("[trace:100]"), "trace id echoed: {admit}");
        assert!(admit.contains("[trace:107]"), "consecutive ids: {admit}");
        let query = client_command(&addr, &ClientAction::Query { token: 0 }).unwrap();
        assert!(query.contains("token=0 on "));
        let stats = client_command(&addr, &ClientAction::Stats).unwrap();
        assert!(stats.contains("platform: 8 processors"));
        assert!(stats.contains("analysis cost: ls_runs="));
        assert!(stats.contains("p50 ≤"), "quantiles rendered: {stats}");
        let prom = client_command(&addr, &ClientAction::StatsPrometheus).unwrap();
        fedsched_telemetry::prometheus::validate_exposition(&prom).expect("valid exposition");
        assert!(prom.contains("fedsched_admitted_total"));
        let removed = client_command(&addr, &ClientAction::Remove { token: 0 }).unwrap();
        assert!(removed.contains("removed token=0"));
        let missing = client_command(&addr, &ClientAction::Remove { token: 0 }).unwrap();
        assert!(missing.contains("not found"));
        let bye = client_command(&addr, &ClientAction::Shutdown).unwrap();
        assert!(bye.contains("shutting down"));
        handle.join();
    }

    #[test]
    fn serve_recover_compact_roundtrip_with_data_dir() {
        let dir = std::env::temp_dir().join(format!(
            "fedsched-cli-durable-roundtrip-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            data_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };

        let handle = start_server(&opts).unwrap();
        let banner = serve_banner(&opts, &handle);
        assert!(banner.contains("durability: "), "banner: {banner}");
        assert!(banner.contains("fsync every"), "banner: {banner}");
        assert!(
            banner.contains("recovered: 0 replayed record(s)"),
            "fresh dir boots empty: {banner}"
        );
        assert!(banner.contains("FEDSCHED_THREADS"), "banner: {banner}");
        let addr = handle.local_addr().to_string();
        client_command(
            &addr,
            &ClientAction::Admit {
                json: sample_json(),
                task: None,
                trace: None,
            },
        )
        .unwrap();
        client_command(&addr, &ClientAction::Remove { token: 3 }).unwrap();
        client_command(&addr, &ClientAction::Shutdown).unwrap();
        handle.join();

        // Offline recovery replays the journal into the surviving state.
        let report = recover_store(&opts).unwrap();
        assert!(report.contains("7 resident task(s)"), "{report}");
        assert!(report.contains("8 admitted"), "{report}");
        assert!(report.contains("1 removed"), "{report}");

        // Compaction folds the journal into one snapshot.
        let compacted = compact_store(&opts).unwrap();
        assert!(compacted.contains("7 resident task(s)"), "{compacted}");
        assert!(compacted.contains("snapshot: seq"), "{compacted}");
        assert!(
            compacted.contains("-> 44 bytes"),
            "wal truncated to magic + marker: {compacted}"
        );

        // A restarted server picks the state straight back up — from the
        // snapshot alone, with nothing left to replay.
        let handle = start_server(&ServeOptions {
            addr: "127.0.0.1:0".into(),
            ..opts.clone()
        })
        .unwrap();
        let boot = handle.boot_report().expect("durability enabled");
        assert_eq!(boot.replayed_records, 0, "compacted: snapshot only");
        let addr = handle.local_addr().to_string();
        let query = client_command(&addr, &ClientAction::Query { token: 0 }).unwrap();
        assert!(query.contains("token=0 on "), "state survived: {query}");
        let gone = client_command(&addr, &ClientAction::Query { token: 3 }).unwrap();
        assert!(gone.contains("not found"), "removal survived: {gone}");
        client_command(&addr, &ClientAction::Shutdown).unwrap();
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_and_compact_require_a_data_dir() {
        for f in [recover_store, compact_store] {
            let err = f(&ServeOptions::default()).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "got {err:?}");
        }
    }

    #[test]
    fn recover_refuses_a_mismatched_configuration() {
        let dir = std::env::temp_dir().join(format!(
            "fedsched-cli-durable-mismatch-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            data_dir: Some(dir.clone()),
            // Snapshot immediately: the config check lives in snapshot
            // restore, so the directory must contain one.
            snapshot_records: 1,
            ..ServeOptions::default()
        };
        let handle = start_server(&opts).unwrap();
        let addr = handle.local_addr().to_string();
        client_command(
            &addr,
            &ClientAction::Admit {
                json: sample_json(),
                task: Some(0),
                trace: None,
            },
        )
        .unwrap();
        client_command(&addr, &ClientAction::Shutdown).unwrap();
        handle.join();

        // Same directory, different platform size: recovery must refuse
        // rather than reinterpret the journal.
        let err = recover_store(&ServeOptions {
            processors: 16,
            ..opts.clone()
        })
        .unwrap_err();
        let CliError::Io(io) = err else {
            panic!("expected InvalidData, got {err:?}");
        };
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData, "got {io:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn client_command_times_out_against_a_stalled_server() {
        // A listener that never accepts: the connection parks in the
        // backlog and no response ever arrives.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let started = std::time::Instant::now();
        let err = client_command_with(&addr, &ClientAction::Stats, Some(300)).unwrap_err();
        let CliError::Io(io) = err else {
            panic!("expected an I/O deadline error, got {err:?}");
        };
        assert!(
            matches!(
                io.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "got {io:?}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "--timeout-ms must bound the call, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn client_admit_rejects_bad_task_index_before_connecting() {
        // Validation runs before dialing: no server listens on this addr,
        // yet the error is the usage error, not a connection failure.
        let err = client_command(
            "127.0.0.1:1",
            &ClientAction::Admit {
                json: sample_json(),
                task: Some(99),
                trace: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "got {err:?}");
    }

    #[test]
    fn error_display_and_sources() {
        let e = CliError::Usage("bad".into());
        assert!(e.to_string().contains("usage error"));
        let io = CliError::from(std::io::Error::other("x"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
