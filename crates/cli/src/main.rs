//! The `fedsched` command-line tool: thin argument parsing over
//! [`fedsched_cli`]'s command implementations.

use std::fs;
use std::process::ExitCode;

use fedsched_cli::{
    analyze, analyze_to_json, client_command_with, compact_store, dot, generate, import_stg, info,
    loadgen, parse_priority, parse_trace_format, recover_store, serve_banner, simulate,
    simulate_with_svg, start_server, trace_export, AnalyzeOptions, CliError, ClientAction,
    GenerateOptions, LoadgenOptions, ServeOptions, SimulateOptions, USAGE,
};
use fedsched_durable::FsyncPolicy;

fn run() -> Result<String, CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    let command = it
        .next()
        .ok_or_else(|| CliError::Usage("missing subcommand".into()))?;

    // Tiny flag cursor shared by all subcommands.
    let rest: Vec<&str> = it.collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut flags: Vec<(&str, Option<&str>)> = Vec::new();
    let mut i = 0;
    let takes_value = |f: &str| {
        matches!(
            f,
            "--tasks"
                | "--utilization"
                | "--max-task-u"
                | "--seed"
                | "--topology"
                | "-m"
                | "--policy"
                | "--priority"
                | "--horizon"
                | "--sporadic"
                | "--exec-min"
                | "--trace"
                | "--task"
                | "--save"
                | "--svg"
                | "--deadline"
                | "--period"
                | "--addr"
                | "--workers"
                | "--shards"
                | "--conn-model"
                | "--template-cache-cap"
                | "--token"
                | "--telemetry"
                | "--trace-id"
                | "--format"
                | "--window"
                | "--out"
                | "--io-timeout-ms"
                | "--idle-strikes"
                | "--max-conns"
                | "--max-frame-bytes"
                | "--max-requests"
                | "--slow-ms"
                | "--timeout-ms"
                | "--threads"
                | "--connections"
                | "--rate"
                | "--growth"
                | "--steps"
                | "--warmup-ms"
                | "--duration-ms"
                | "--process"
                | "--data-dir"
                | "--fsync"
                | "--snapshot-records"
                | "--snapshot-bytes"
                | "--handoff-from"
        )
    };
    while i < rest.len() {
        let a = rest[i];
        if a.starts_with('-') {
            if takes_value(a) {
                let v = rest
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("{a} needs a value")))?;
                flags.push((a, Some(v)));
                i += 2;
            } else {
                flags.push((a, None));
                i += 1;
            }
        } else {
            positional.push(a);
            i += 1;
        }
    }
    // `--threads` is a global flag: it sizes the analysis thread pool for
    // whatever the subcommand runs, so it is handled (and consumed) here
    // before the per-subcommand flag check.
    if let Some(pos) = flags.iter().position(|(f, _)| *f == "--threads") {
        let (_, v) = flags.remove(pos);
        let v = v.expect("--threads takes a value");
        let n: usize = v.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError::Usage(format!("--threads expects an integer >= 1, got {v:?}"))
        })?;
        fedsched_parallel::configure_threads(n);
    }
    // Reject flags the subcommand does not understand: silent typo
    // swallowing (e.g. `--utilisation`) is worse than an error.
    let known: &[&str] = match command {
        "generate" => &[
            "--tasks",
            "--utilization",
            "--max-task-u",
            "--seed",
            "--topology",
            "--implicit",
        ],
        "info" => &[],
        "analyze" => &[
            "-m",
            "--policy",
            "--priority",
            "--exact-partition",
            "--json",
            "--save",
        ],
        "simulate" => &[
            "-m",
            "--policy",
            "--horizon",
            "--sporadic",
            "--exec-min",
            "--seed",
            "--trace",
            "--svg",
        ],
        "trace" => &[
            "-m",
            "--policy",
            "--horizon",
            "--sporadic",
            "--exec-min",
            "--seed",
            "--format",
            "--window",
            "--out",
        ],
        "dot" => &["--task"],
        "import-stg" => &["--deadline", "--period"],
        "serve" => &[
            "-m",
            "--policy",
            "--exact-partition",
            "--addr",
            "--workers",
            "--shards",
            "--conn-model",
            "--template-cache-cap",
            "--telemetry",
            "--io-timeout-ms",
            "--idle-strikes",
            "--max-conns",
            "--max-frame-bytes",
            "--max-requests",
            "--slow-ms",
            "--data-dir",
            "--fsync",
            "--snapshot-records",
            "--snapshot-bytes",
            "--handoff-from",
        ],
        "recover" | "compact" => &[
            "-m",
            "--policy",
            "--exact-partition",
            "--template-cache-cap",
            "--data-dir",
            "--fsync",
            "--snapshot-records",
            "--snapshot-bytes",
        ],
        "client" => &[
            "--addr",
            "--token",
            "--task",
            "--trace-id",
            "--format",
            "--timeout-ms",
        ],
        "loadgen" => &[
            "--addr",
            "-m",
            "--quick",
            "--out",
            "--connections",
            "--rate",
            "--growth",
            "--steps",
            "--warmup-ms",
            "--duration-ms",
            "--process",
            "--seed",
        ],
        _ => &[],
    };
    if let Some((bad, _)) = flags.iter().find(|(f, _)| !known.contains(f)) {
        return Err(CliError::Usage(format!(
            "unknown flag {bad:?} for `{command}`"
        )));
    }
    let flag = |name: &str| flags.iter().find(|(f, _)| *f == name).map(|(_, v)| *v);
    let parse_num = |name: &str, v: &str| -> Result<f64, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(format!("{name} expects a number, got {v:?}")))
    };
    let read_input = |positional: &[&str]| -> Result<String, CliError> {
        let path = positional
            .first()
            .ok_or_else(|| CliError::Usage("missing <system.json> argument".into()))?;
        Ok(fs::read_to_string(path)?)
    };

    match command {
        "generate" => {
            let mut opts = GenerateOptions::default();
            if let Some(Some(v)) = flag("--tasks") {
                opts.tasks = parse_num("--tasks", v)? as usize;
            }
            if let Some(Some(v)) = flag("--utilization") {
                opts.utilization = parse_num("--utilization", v)?;
            }
            if let Some(Some(v)) = flag("--max-task-u") {
                opts.max_task_utilization = parse_num("--max-task-u", v)?;
            }
            if let Some(Some(v)) = flag("--seed") {
                opts.seed = parse_num("--seed", v)? as u64;
            }
            if let Some(Some(v)) = flag("--topology") {
                opts.topology = v.to_owned();
            }
            if flag("--implicit").is_some() {
                opts.implicit = true;
            }
            generate(&opts)
        }
        "info" => info(&read_input(&positional)?),
        "analyze" => {
            let processors = match flag("-m") {
                Some(Some(v)) => parse_num("-m", v)? as u32,
                _ => return Err(CliError::Usage("analyze requires -m <processors>".into())),
            };
            let mut opts = AnalyzeOptions {
                processors,
                exact_partition: flag("--exact-partition").is_some(),
                json: flag("--json").is_some(),
                ..AnalyzeOptions::default()
            };
            if let Some(Some(v)) = flag("--policy") {
                opts.policy = v.to_owned();
            }
            if let Some(Some(v)) = flag("--priority") {
                opts.priority = parse_priority(v)?;
            }
            let input = read_input(&positional)?;
            if let Some(Some(path)) = flag("--save") {
                let artifact = analyze_to_json(&input, &opts)?;
                fs::write(path, artifact)?;
            }
            analyze(&input, &opts)
        }
        "simulate" => {
            let mut opts = SimulateOptions::default();
            match flag("-m") {
                Some(Some(v)) => opts.processors = parse_num("-m", v)? as u32,
                _ => return Err(CliError::Usage("simulate requires -m <processors>".into())),
            }
            if let Some(Some(v)) = flag("--policy") {
                opts.policy = parse_priority(v)?;
            }
            if let Some(Some(v)) = flag("--horizon") {
                opts.horizon = parse_num("--horizon", v)? as u64;
            }
            if let Some(Some(v)) = flag("--sporadic") {
                opts.sporadic_slack = parse_num("--sporadic", v)?;
            }
            if let Some(Some(v)) = flag("--exec-min") {
                opts.exec_min_fraction = parse_num("--exec-min", v)?;
            }
            if let Some(Some(v)) = flag("--seed") {
                opts.seed = parse_num("--seed", v)? as u64;
            }
            if let Some(Some(v)) = flag("--trace") {
                opts.trace_window = parse_num("--trace", v)? as u64;
            }
            let input = read_input(&positional)?;
            let svg_window = flag("--svg").flatten().map(|path| {
                let window = if opts.trace_window > 0 {
                    opts.trace_window
                } else {
                    200
                };
                (path, window)
            });
            match svg_window {
                Some((path, window)) => {
                    let (text, svg) = simulate_with_svg(&input, opts, window)?;
                    fs::write(path, svg)?;
                    Ok(text)
                }
                None => simulate(&input, opts),
            }
        }
        "trace" => {
            let mut opts = SimulateOptions::default();
            match flag("-m") {
                Some(Some(v)) => opts.processors = parse_num("-m", v)? as u32,
                _ => return Err(CliError::Usage("trace requires -m <processors>".into())),
            }
            if let Some(Some(v)) = flag("--policy") {
                opts.policy = parse_priority(v)?;
            }
            if let Some(Some(v)) = flag("--horizon") {
                opts.horizon = parse_num("--horizon", v)? as u64;
            }
            if let Some(Some(v)) = flag("--sporadic") {
                opts.sporadic_slack = parse_num("--sporadic", v)?;
            }
            if let Some(Some(v)) = flag("--exec-min") {
                opts.exec_min_fraction = parse_num("--exec-min", v)?;
            }
            if let Some(Some(v)) = flag("--seed") {
                opts.seed = parse_num("--seed", v)? as u64;
            }
            let format = match flag("--format") {
                Some(Some(v)) => parse_trace_format(v)?,
                _ => {
                    return Err(CliError::Usage(
                        "trace requires --format chrome|gantt|csv".into(),
                    ))
                }
            };
            let window = match flag("--window") {
                Some(Some(v)) => parse_num("--window", v)? as u64,
                _ => 200,
            };
            let out = trace_export(&read_input(&positional)?, opts, format, window)?;
            match flag("--out").flatten() {
                Some(path) => {
                    fs::write(path, &out)?;
                    Ok(format!("wrote {path}\n"))
                }
                None => Ok(out),
            }
        }
        "import-stg" => {
            let deadline = match flag("--deadline") {
                Some(Some(v)) => parse_num("--deadline", v)? as u64,
                _ => return Err(CliError::Usage("import-stg requires --deadline".into())),
            };
            let period = match flag("--period") {
                Some(Some(v)) => parse_num("--period", v)? as u64,
                _ => return Err(CliError::Usage("import-stg requires --period".into())),
            };
            import_stg(&read_input(&positional)?, deadline, period)
        }
        "dot" => {
            let task = match flag("--task") {
                Some(Some(v)) => Some(parse_num("--task", v)? as usize),
                _ => None,
            };
            dot(&read_input(&positional)?, task)
        }
        "serve" | "recover" | "compact" => {
            let mut opts = ServeOptions::default();
            match flag("-m") {
                Some(Some(v)) => opts.processors = parse_num("-m", v)? as u32,
                _ => {
                    return Err(CliError::Usage(format!(
                        "{command} requires -m <processors>"
                    )))
                }
            }
            if let Some(Some(v)) = flag("--policy") {
                opts.policy = parse_priority(v)?;
            }
            opts.exact_partition = flag("--exact-partition").is_some();
            if let Some(Some(v)) = flag("--addr") {
                opts.addr = v.to_owned();
            }
            if let Some(Some(v)) = flag("--workers") {
                opts.workers = parse_num("--workers", v)? as usize;
            }
            if let Some(Some(v)) = flag("--shards") {
                opts.shards = parse_num("--shards", v)? as usize;
            }
            if let Some(Some(v)) = flag("--conn-model") {
                opts.conn_model = v.parse().map_err(CliError::Usage)?;
            }
            if let Some(Some(v)) = flag("--template-cache-cap") {
                opts.template_cache_cap = parse_num("--template-cache-cap", v)? as usize;
            }
            if let Some(Some(v)) = flag("--telemetry") {
                opts.telemetry_events = parse_num("--telemetry", v)? as usize;
            }
            if let Some(Some(v)) = flag("--io-timeout-ms") {
                let ms = parse_num("--io-timeout-ms", v)? as u64;
                // 0 disables per-connection deadlines (and with them the
                // bounded-shutdown guarantee).
                opts.limits.io_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            if let Some(Some(v)) = flag("--idle-strikes") {
                opts.limits.idle_strikes = parse_num("--idle-strikes", v)? as u32;
            }
            if let Some(Some(v)) = flag("--max-conns") {
                opts.limits.max_connections = parse_num("--max-conns", v)? as usize;
            }
            if let Some(Some(v)) = flag("--max-frame-bytes") {
                opts.limits.max_frame_bytes = parse_num("--max-frame-bytes", v)? as usize;
            }
            if let Some(Some(v)) = flag("--max-requests") {
                opts.limits.max_requests_per_connection = parse_num("--max-requests", v)? as u64;
            }
            if let Some(Some(v)) = flag("--slow-ms") {
                let ms = parse_num("--slow-ms", v)? as u64;
                // 0 disables the slow-request log.
                opts.limits.slow_request = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            if let Some(Some(v)) = flag("--data-dir") {
                opts.data_dir = Some(v.into());
            }
            if let Some(Some(v)) = flag("--fsync") {
                opts.fsync = FsyncPolicy::parse(v).map_err(CliError::Usage)?;
            }
            if let Some(Some(v)) = flag("--snapshot-records") {
                opts.snapshot_records = parse_num("--snapshot-records", v)? as u64;
            }
            if let Some(Some(v)) = flag("--snapshot-bytes") {
                opts.snapshot_bytes = parse_num("--snapshot-bytes", v)? as u64;
            }
            if let Some(Some(v)) = flag("--handoff-from") {
                opts.handoff_from = Some(v.into());
            }
            match command {
                "recover" => recover_store(&opts),
                "compact" => compact_store(&opts),
                _ => {
                    let handle = start_server(&opts)?;
                    eprint!("{}", serve_banner(&opts, &handle));
                    handle.join();
                    Ok("server stopped\n".to_owned())
                }
            }
        }
        "loadgen" => {
            let mut opts = LoadgenOptions {
                quick: flag("--quick").is_some(),
                ..LoadgenOptions::default()
            };
            if let Some(Some(v)) = flag("--addr") {
                opts.addr = Some(v.to_owned());
            }
            if let Some(Some(v)) = flag("-m") {
                opts.processors = parse_num("-m", v)? as u32;
            }
            if let Some(Some(v)) = flag("--out") {
                opts.out = v.to_owned();
            }
            if let Some(Some(v)) = flag("--connections") {
                opts.connections = Some(parse_num("--connections", v)? as usize);
            }
            if let Some(Some(v)) = flag("--rate") {
                opts.rate = Some(parse_num("--rate", v)?);
            }
            if let Some(Some(v)) = flag("--growth") {
                opts.growth = Some(parse_num("--growth", v)?);
            }
            if let Some(Some(v)) = flag("--steps") {
                opts.steps = Some(parse_num("--steps", v)? as usize);
            }
            if let Some(Some(v)) = flag("--warmup-ms") {
                opts.warmup_ms = Some(parse_num("--warmup-ms", v)? as u64);
            }
            if let Some(Some(v)) = flag("--duration-ms") {
                opts.measure_ms = Some(parse_num("--duration-ms", v)? as u64);
            }
            if let Some(Some(v)) = flag("--process") {
                opts.process = Some(v.to_owned());
            }
            if let Some(Some(v)) = flag("--seed") {
                opts.seed = Some(parse_num("--seed", v)? as u64);
            }
            loadgen(&opts)
        }
        "client" => {
            let addr = flag("--addr")
                .flatten()
                .unwrap_or("127.0.0.1:7878")
                .to_owned();
            let action = positional
                .first()
                .ok_or_else(|| CliError::Usage("client needs an action".into()))?;
            let token = || -> Result<u64, CliError> {
                match flag("--token") {
                    Some(Some(v)) => Ok(parse_num("--token", v)? as u64),
                    _ => Err(CliError::Usage(format!("client {action} requires --token"))),
                }
            };
            let action = match *action {
                "admit" => ClientAction::Admit {
                    json: read_input(&positional[1..])?,
                    task: match flag("--task") {
                        Some(Some(v)) => Some(parse_num("--task", v)? as usize),
                        _ => None,
                    },
                    trace: match flag("--trace-id") {
                        Some(Some(v)) => Some(parse_num("--trace-id", v)? as u64),
                        _ => None,
                    },
                },
                "remove" => ClientAction::Remove { token: token()? },
                "query" => ClientAction::Query { token: token()? },
                "stats" => match flag("--format").flatten() {
                    Some("prometheus") => ClientAction::StatsPrometheus,
                    Some(other) => {
                        return Err(CliError::Usage(format!(
                            "unknown stats format {other:?} (expected prometheus)"
                        )))
                    }
                    None => ClientAction::Stats,
                },
                "shutdown" => ClientAction::Shutdown,
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown client action {other:?} \
                         (expected admit|remove|query|stats|shutdown)"
                    )))
                }
            };
            let timeout_ms = match flag("--timeout-ms") {
                Some(Some(v)) => Some(parse_num("--timeout-ms", v)? as u64),
                _ => None,
            };
            client_command_with(&addr, &action, timeout_ms)
        }
        "-h" | "--help" | "help" => Ok(USAGE.to_owned()),
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(CliError::NotSchedulable(msg)) => {
            eprintln!("not schedulable: {msg}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
