//! Integer-tick time representation.
//!
//! The paper specifies vertex worst-case execution times as natural numbers
//! (`e_v ∈ ℕ`) and deadlines/periods as positive reals. All admission tests in
//! this workspace are exact, so every temporal quantity is represented as an
//! integer number of abstract *ticks*; callers with real-valued parameters are
//! expected to scale them to a common integer grid first.
//!
//! Two newtypes keep instants and durations apart ([`Time`] is a point on the
//! timeline, [`Duration`] is a length of time), so that e.g. adding two
//! instants — a classic unit bug — does not type-check.
//!
//! # Examples
//!
//! ```
//! use fedsched_dag::time::{Duration, Time};
//!
//! let release = Time::new(100);
//! let relative_deadline = Duration::new(16);
//! let absolute_deadline = release + relative_deadline;
//! assert_eq!(absolute_deadline, Time::new(116));
//! assert_eq!(absolute_deadline - release, relative_deadline);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A length of time, in integer ticks.
///
/// Used for worst-case execution times, relative deadlines, periods, chain
/// lengths, volumes, makespans and response times.
///
/// # Examples
///
/// ```
/// use fedsched_dag::time::Duration;
///
/// let wcet = Duration::new(3);
/// assert_eq!(wcet + wcet, Duration::new(6));
/// assert_eq!(wcet.ticks(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(u64);

/// An instant on the timeline, in integer ticks since time zero.
///
/// Used for release times, start times, finish times and absolute deadlines.
///
/// # Examples
///
/// ```
/// use fedsched_dag::time::{Duration, Time};
///
/// let t = Time::ZERO + Duration::new(42);
/// assert_eq!(t.ticks(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration of `ticks` ticks.
    #[must_use]
    pub const fn new(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// Returns the number of ticks in this duration.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns `true` if this duration is zero ticks long.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    #[must_use]
    pub const fn checked_sub(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Saturating subtraction: returns [`Duration::ZERO`] if `rhs > self`.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[must_use]
    pub const fn checked_mul(self, k: u64) -> Option<Duration> {
        match self.0.checked_mul(k) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Division rounding toward positive infinity: `⌈self / rhs⌉`.
    ///
    /// This is the form that appears throughout schedulability analysis,
    /// e.g. the minimum processor count `⌈vol / D⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[must_use]
    pub const fn div_ceil(self, rhs: Duration) -> u64 {
        assert!(rhs.0 != 0, "division by zero duration");
        self.0.div_ceil(rhs.0)
    }
}

impl Time {
    /// The origin of the timeline.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates the instant `ticks` ticks after time zero.
    #[must_use]
    pub const fn new(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Returns the number of ticks since time zero.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The duration elapsed from the time origin to this instant.
    #[must_use]
    pub const fn since_origin(self) -> Duration {
        Duration(self.0)
    }

    /// Checked advance; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Duration) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Saturating difference: returns [`Duration::ZERO`] if `earlier` is
    /// actually later than `self`.
    #[must_use]
    pub const fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (durations are unsigned).
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign<Duration> for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Mul<Duration> for u64 {
    type Output = Duration;
    fn mul(self, d: Duration) -> Duration {
        Duration(self * d.0)
    }
}

impl Div<Duration> for Duration {
    type Output = u64;
    /// Integer (floor) division.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Duration> for Duration {
    fn sum<I: Iterator<Item = &'a Duration>>(iter: I) -> Duration {
        iter.copied().sum()
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics in debug builds if the result would precede time zero.
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    /// The duration from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Duration {
    fn from(ticks: u64) -> Self {
        Duration(ticks)
    }
}

impl From<Duration> for u64 {
    fn from(d: Duration) -> Self {
        d.0
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Time(ticks)
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_arithmetic() {
        let a = Duration::new(5);
        let b = Duration::new(3);
        assert_eq!(a + b, Duration::new(8));
        assert_eq!(a - b, Duration::new(2));
        assert_eq!(a * 2, Duration::new(10));
        assert_eq!(3 * b, Duration::new(9));
        assert_eq!(a / b, 1);
        assert_eq!(a % b, Duration::new(2));
    }

    #[test]
    fn duration_div_ceil() {
        assert_eq!(Duration::new(9).div_ceil(Duration::new(4)), 3);
        assert_eq!(Duration::new(8).div_ceil(Duration::new(4)), 2);
        assert_eq!(Duration::new(1).div_ceil(Duration::new(4)), 1);
        assert_eq!(Duration::new(0).div_ceil(Duration::new(4)), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn duration_div_ceil_by_zero_panics() {
        let _ = Duration::new(1).div_ceil(Duration::ZERO);
    }

    #[test]
    fn time_duration_interplay() {
        let t = Time::new(10);
        let d = Duration::new(6);
        assert_eq!(t + d, Time::new(16));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, Time::new(4));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            Duration::new(2).saturating_sub(Duration::new(5)),
            Duration::ZERO
        );
        assert_eq!(Time::new(2).saturating_since(Time::new(5)), Duration::ZERO);
        assert_eq!(
            Time::new(7).saturating_since(Time::new(5)),
            Duration::new(2)
        );
    }

    #[test]
    fn checked_ops() {
        assert_eq!(Duration::MAX.checked_add(Duration::new(1)), None);
        assert_eq!(
            Duration::new(1).checked_add(Duration::new(2)),
            Some(Duration::new(3))
        );
        assert_eq!(Duration::new(1).checked_sub(Duration::new(2)), None);
        assert_eq!(Duration::MAX.checked_mul(2), None);
        assert_eq!(Time::MAX.checked_add(Duration::new(1)), None);
    }

    #[test]
    fn sums() {
        let ds = [Duration::new(1), Duration::new(2), Duration::new(3)];
        let total: Duration = ds.iter().sum();
        assert_eq!(total, Duration::new(6));
        let total: Duration = ds.into_iter().sum();
        assert_eq!(total, Duration::new(6));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Duration::new(1) < Duration::new(2));
        assert!(Time::new(1) < Time::new(2));
        assert_eq!(Duration::new(7).to_string(), "7");
        assert_eq!(Time::new(7).to_string(), "t7");
    }

    #[test]
    fn conversions() {
        assert_eq!(u64::from(Duration::from(9u64)), 9);
        assert_eq!(u64::from(Time::from(9u64)), 9);
    }
}
