//! The sporadic DAG task model of Baruah (DATE 2015).
//!
//! This crate is the model substrate for the `fedsched` workspace: it defines
//! integer-tick time ([`time`]), exact rational arithmetic ([`rational`]),
//! weighted precedence DAGs ([`graph`]), sporadic DAG tasks ([`task`]) and
//! task systems ([`system`]), together with the paper's worked examples
//! ([`examples`]).
//!
//! A *sporadic DAG task* `τ_i = (G_i, D_i, T_i)` releases *dag-jobs*: at each
//! release, every vertex of `G_i` becomes a job, subject to the precedence
//! edges; all of them must finish within `D_i`, and consecutive releases are
//! separated by at least `T_i`. The quantities the federated-scheduling
//! analysis is built on:
//!
//! * `vol_i` — total work of one dag-job ([`task::DagTask::volume`]);
//! * `len_i` — longest chain ([`task::DagTask::longest_chain_length`]);
//! * `u_i = vol_i / T_i` — utilization ([`task::DagTask::utilization`]);
//! * `δ_i = vol_i / min(D_i, T_i)` — density ([`task::DagTask::density`]).
//!
//! # Examples
//!
//! Rebuilding the paper's Figure 1 task by hand:
//!
//! ```
//! use fedsched_dag::graph::DagBuilder;
//! use fedsched_dag::rational::Rational;
//! use fedsched_dag::task::DagTask;
//! use fedsched_dag::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new();
//! let v = b.add_vertices([1, 3, 2, 2, 1].map(Duration::new));
//! b.add_edge(v[0], v[1])?;
//! b.add_edge(v[0], v[2])?;
//! b.add_edge(v[1], v[3])?;
//! b.add_edge(v[2], v[3])?;
//! b.add_edge(v[2], v[4])?;
//! let tau1 = DagTask::new(b.build()?, Duration::new(16), Duration::new(20))?;
//! assert_eq!(tau1.volume(), Duration::new(9));
//! assert_eq!(tau1.longest_chain_length(), Duration::new(6));
//! assert_eq!(tau1.density(), Rational::new(9, 16));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod error;
pub mod examples;
pub mod graph;
pub mod rational;
pub mod stg;
pub mod system;
pub mod task;
pub mod time;

pub use error::{GraphBuildError, TaskBuildError};
pub use graph::{Chain, Dag, DagBuilder, VertexId};
pub use rational::Rational;
pub use stg::{parse_stg, ParseStgError};
pub use system::{TaskId, TaskSystem};
pub use task::{DagTask, DeadlineClass, TaskClass};
pub use time::{Duration, Time};
