//! Import of Standard Task Graph (STG) files.
//!
//! The STG suite (Tobita & Kasahara) is the scheduling community's stock of
//! benchmark precedence graphs; supporting it lets this workspace analyse
//! the same DAGs other tools publish results for.
//!
//! The format, per graph:
//!
//! ```text
//! <n>                         # number of *application* tasks
//! 0    0  0                   # entry dummy: id, time, #preds
//! 1    7  1   0               # task 1: time 7, one predecessor (0)
//! 2    3  2   0 1             # task 2: time 3, predecessors 0 and 1
//! …
//! <n+1> 0 <k> …               # exit dummy
//! # comment lines and blank lines are ignored
//! ```
//!
//! The entry/exit dummies have zero processing time; since this model
//! requires positive WCETs, they are *dropped* and their precedence
//! influence is preserved by transitive adjacency (an edge through a dummy
//! contributes nothing to any chain). Edges incident only to dummies vanish
//! with them.

use core::fmt;

use crate::graph::{Dag, DagBuilder, VertexId};
use crate::time::Duration;

/// An error raised while parsing an STG document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseStgError {
    /// The document contained no task-count header.
    MissingHeader,
    /// A line could not be tokenised into the expected integers.
    MalformedLine {
        /// 1-based line number in the input.
        line: usize,
    },
    /// A task referenced a predecessor id that has not been declared.
    UnknownPredecessor {
        /// 1-based line number in the input.
        line: usize,
        /// The undeclared id.
        id: u64,
    },
    /// Fewer task lines than the header promised.
    TruncatedDocument {
        /// Tasks promised by the header (including dummies).
        expected: usize,
        /// Task lines found.
        found: usize,
    },
}

impl fmt::Display for ParseStgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseStgError::MissingHeader => write!(f, "missing task-count header"),
            ParseStgError::MalformedLine { line } => {
                write!(f, "malformed STG line {line}")
            }
            ParseStgError::UnknownPredecessor { line, id } => {
                write!(f, "line {line} references undeclared predecessor {id}")
            }
            ParseStgError::TruncatedDocument { expected, found } => write!(
                f,
                "document promises {expected} task lines but contains {found}"
            ),
        }
    }
}

impl std::error::Error for ParseStgError {}

/// Parses one STG document into a [`Dag`].
///
/// Zero-time vertices (the STG entry/exit dummies, and any other zero-time
/// task) are elided: their predecessors are connected directly to their
/// successors, preserving the precedence relation without violating the
/// positive-WCET invariant of this model.
///
/// # Errors
///
/// See [`ParseStgError`].
///
/// # Examples
///
/// ```
/// use fedsched_dag::stg::parse_stg;
/// use fedsched_dag::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let doc = "\
/// 3
/// 0 0 0
/// 1 7 1 0
/// 2 3 1 0
/// 3 2 2 1 2
/// 4 0 1 3
/// ";
/// let dag = parse_stg(doc)?;
/// assert_eq!(dag.vertex_count(), 3); // dummies elided
/// assert_eq!(dag.volume(), Duration::new(12));
/// assert_eq!(dag.longest_chain().length, Duration::new(9)); // 7 + 2
/// # Ok(())
/// # }
/// ```
pub fn parse_stg(input: &str) -> Result<Dag, ParseStgError> {
    // Tokenise into (line_no, id, time, preds).
    let mut records: Vec<(usize, u64, u64, Vec<u64>)> = Vec::new();
    let mut header: Option<usize> = None;
    for (line_no, raw) in input.lines().enumerate() {
        let line_no = line_no + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut nums = Vec::new();
        for tok in line.split_whitespace() {
            match tok.parse::<u64>() {
                Ok(v) => nums.push(v),
                // Trailing annotations after a '#' are tolerated.
                Err(_) if tok.starts_with('#') => break,
                Err(_) => return Err(ParseStgError::MalformedLine { line: line_no }),
            }
        }
        if header.is_none() {
            if nums.len() != 1 {
                return Err(ParseStgError::MalformedLine { line: line_no });
            }
            header = Some(nums[0] as usize);
            continue;
        }
        if nums.len() < 3 {
            return Err(ParseStgError::MalformedLine { line: line_no });
        }
        let (id, time, npred) = (nums[0], nums[1], nums[2] as usize);
        if nums.len() != 3 + npred {
            return Err(ParseStgError::MalformedLine { line: line_no });
        }
        records.push((line_no, id, time, nums[3..].to_vec()));
    }
    let expected = header.ok_or(ParseStgError::MissingHeader)? + 2; // + dummies
    if records.len() < expected {
        return Err(ParseStgError::TruncatedDocument {
            expected,
            found: records.len(),
        });
    }

    // Map STG ids to dense indices; zero-time tasks are elided, with their
    // (transitive) predecessors forwarded to their successors.
    use std::collections::HashMap;
    let mut builder = DagBuilder::new();
    // For each STG id: Real(vertex) or the set of real ancestors it stands
    // for (for elided zero-time tasks).
    enum Slot {
        Real(VertexId),
        Elided(Vec<VertexId>),
    }
    let mut slots: HashMap<u64, Slot> = HashMap::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (line_no, id, time, preds) in &records {
        // Resolve this record's effective predecessors.
        let mut real_preds: Vec<VertexId> = Vec::new();
        for p in preds {
            match slots.get(p) {
                Some(Slot::Real(v)) => real_preds.push(*v),
                Some(Slot::Elided(vs)) => real_preds.extend(vs.iter().copied()),
                None => {
                    return Err(ParseStgError::UnknownPredecessor {
                        line: *line_no,
                        id: *p,
                    })
                }
            }
        }
        real_preds.sort_unstable();
        real_preds.dedup();
        if *time == 0 {
            slots.insert(*id, Slot::Elided(real_preds));
        } else {
            let v = builder.add_vertex(Duration::new(*time));
            for p in &real_preds {
                edges.push((*p, v));
            }
            slots.insert(*id, Slot::Real(v));
        }
    }
    for (a, b) in edges {
        builder
            .add_edge(a, b)
            .expect("ids resolved in declaration order cannot duplicate or cycle");
    }
    Ok(builder.build().expect("STG precedence is acyclic"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# fork-join with an extra chain
5
0 0 0
1 4 1 0
2 6 1 1
3 2 1 1
4 5 2 2 3
5 1 1 4
6 0 1 5
";

    #[test]
    fn parses_and_elides_dummies() {
        let dag = parse_stg(SAMPLE).unwrap();
        assert_eq!(dag.vertex_count(), 5);
        assert_eq!(dag.volume(), Duration::new(18));
        // 4 → 6 → 5 → 1 = 16.
        assert_eq!(dag.longest_chain().length, Duration::new(16));
        assert_eq!(dag.sources().len(), 1);
        assert_eq!(dag.sinks().len(), 1);
    }

    #[test]
    fn zero_time_interior_tasks_forward_precedence() {
        // 1 → (dummy 2) → 3 must become 1 → 3.
        let doc = "\
2
0 0 0
1 3 1 0
2 0 1 1
3 4 1 2
4 0 1 3
";
        let dag = parse_stg(doc).unwrap();
        assert_eq!(dag.vertex_count(), 2);
        assert_eq!(dag.edge_count(), 1);
        assert_eq!(dag.longest_chain().length, Duration::new(7));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let doc = "# head\n\n1\n0 0 0\n\n1 5 1 0\n# tail\n2 0 1 1\n";
        let dag = parse_stg(doc).unwrap();
        assert_eq!(dag.vertex_count(), 1);
        assert_eq!(dag.volume(), Duration::new(5));
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse_stg(""), Err(ParseStgError::MissingHeader));
        assert_eq!(
            parse_stg("2 3\n"),
            Err(ParseStgError::MalformedLine { line: 1 })
        );
        assert!(matches!(
            parse_stg("1\n0 0 0\n1 5 1 9\n2 0 1 1\n"),
            Err(ParseStgError::UnknownPredecessor { id: 9, .. })
        ));
        assert!(matches!(
            parse_stg("4\n0 0 0\n1 5 1 0\n"),
            Err(ParseStgError::TruncatedDocument { .. })
        ));
        assert!(matches!(
            parse_stg("1\n0 0 0\n1 5 2 0\n"),
            Err(ParseStgError::MalformedLine { .. })
        ));
        // Non-numeric token.
        assert!(matches!(
            parse_stg("1\n0 0 0\n1 x 1 0\n2 0 1 1\n"),
            Err(ParseStgError::MalformedLine { .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = ParseStgError::UnknownPredecessor { line: 4, id: 9 };
        assert!(e.to_string().contains("line 4"));
    }
}
