//! Exact rational arithmetic for utilizations, densities and speedup factors.
//!
//! Schedulability tests must not be subject to floating-point rounding: a task
//! with density exactly 1 is *high-density* in the paper's classification, and
//! a partitioning test that admits a task due to a `1e-16` error is unsound.
//! [`Rational`] is a minimal exact fraction over `i128`, always stored in
//! lowest terms with a positive denominator.
//!
//! # Examples
//!
//! ```
//! use fedsched_dag::rational::Rational;
//!
//! let density = Rational::new(9, 16); // paper Example 1: δ₁ = 9/16
//! assert!(density < Rational::ONE);
//! assert_eq!(density + Rational::new(7, 16), Rational::ONE);
//! assert_eq!(density.to_f64(), 0.5625);
//! ```
//!
//! # Overflow
//!
//! Comparisons are exact for *all* representable rationals (cross products
//! are evaluated in 256 bits), and addition uses least-common-multiple
//! denominators to keep intermediates small. Arithmetic still panics if a
//! reduced result genuinely exceeds `i128`; task parameters in this
//! workspace are `u64` ticks and generated periods are grid-rounded (see
//! `fedsched-gen`), which keeps every quantity the analyses sum far inside
//! that range.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::time::Duration;

/// An exact rational number `num / den`, always reduced, `den > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Rational {
    /// Exactly zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// Exactly one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates the rational `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub const fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        // gcd(0, den) = |den|, so 0/den normalizes to 0/1.
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The ratio of two durations, `num / den`.
    ///
    /// This is the form used for utilization (`vol / T`) and density
    /// (`vol / min(D, T)`).
    ///
    /// # Panics
    ///
    /// Panics if `den` is the zero duration.
    #[must_use]
    pub fn ratio(num: Duration, den: Duration) -> Rational {
        Rational::new(num.ticks() as i128, den.ticks() as i128)
    }

    /// Creates the integer rational `n / 1`.
    #[must_use]
    pub const fn from_integer(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// The numerator of the reduced form (sign lives here).
    #[must_use]
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// The denominator of the reduced form (always positive).
    #[must_use]
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// Converts to the nearest `f64`. For *reporting only* — never used in
    /// admission decisions.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `⌈self⌉` as an integer.
    ///
    /// ```
    /// use fedsched_dag::rational::Rational;
    /// assert_eq!(Rational::new(9, 4).ceil(), 3);
    /// assert_eq!(Rational::new(8, 4).ceil(), 2);
    /// assert_eq!(Rational::new(-9, 4).ceil(), -2);
    /// ```
    #[must_use]
    pub const fn ceil(self) -> i128 {
        self.num.div_euclid(self.den)
            + if self.num.rem_euclid(self.den) != 0 {
                1
            } else {
                0
            }
    }

    /// `⌊self⌋` as an integer.
    #[must_use]
    pub const fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Returns `true` if `self < 0`.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Returns `true` if `self == 0`.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// The reciprocal `1 / self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[must_use]
    pub const fn recip(self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        let sign = if self.num < 0 { -1 } else { 1 };
        Rational {
            num: sign * self.den,
            den: sign * self.num,
        }
    }

    /// The smaller of two rationals.
    #[must_use]
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    #[must_use]
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Full 128×128 → 256-bit unsigned multiplication, returned as (hi, lo).
const fn wide_mul(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (ll & MASK) | (mid << 64);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves
        // order. The products can exceed i128 for rationals with large
        // reduced denominators (e.g. long sums of utilizations), so compare
        // through a full 256-bit multiply instead of trusting i128.
        match (self.num.signum(), other.num.signum()) {
            (a, b) if a != b => a.cmp(&b),
            (0, 0) => Ordering::Equal,
            (sign, _) => {
                let lhs = wide_mul(self.num.unsigned_abs(), other.den.unsigned_abs());
                let rhs = wide_mul(other.num.unsigned_abs(), self.den.unsigned_abs());
                if sign > 0 {
                    lhs.cmp(&rhs)
                } else {
                    rhs.cmp(&lhs)
                }
            }
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // Least-common-multiple addition keeps intermediates as small as
        // possible (important when summing many task utilizations).
        let g = gcd(self.den, rhs.den);
        let scale_l = rhs.den / g;
        let scale_r = self.den / g;
        Rational::new(self.num * scale_l + rhs.num * scale_r, self.den * scale_l)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        Rational::new(
            (self.num / g1) * (rhs.num / g2),
            (self.den / g2) * (rhs.den / g1),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the reciprocal
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.copied().sum()
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::from_integer(n)
    }
}

impl From<u64> for Rational {
    fn from(n: u64) -> Self {
        Rational::from_integer(n as i128)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert!(Rational::new(-1, 2).is_negative());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 7) == Rational::ONE);
        assert_eq!(
            Rational::new(1, 3).max(Rational::new(1, 2)),
            Rational::new(1, 2)
        );
        assert_eq!(
            Rational::new(1, 3).min(Rational::new(1, 2)),
            Rational::new(1, 3)
        );
    }

    #[test]
    fn ceil_floor() {
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::from_integer(5).ceil(), 5);
        assert_eq!(Rational::from_integer(5).floor(), 5);
    }

    #[test]
    fn ratio_of_durations() {
        // Paper Example 1: vol = 9, min(D, T) = 16 ⇒ δ = 9/16.
        let r = Rational::ratio(Duration::new(9), Duration::new(16));
        assert_eq!(r, Rational::new(9, 16));
        assert!(r < Rational::ONE);
    }

    #[test]
    fn recip() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert_eq!(Rational::new(-3, 4).recip(), Rational::new(-4, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_of_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn sum_and_display() {
        let s: Rational = [
            Rational::new(1, 4),
            Rational::new(1, 4),
            Rational::new(1, 2),
        ]
        .iter()
        .sum();
        assert_eq!(s, Rational::ONE);
        assert_eq!(Rational::new(9, 16).to_string(), "9/16");
        assert_eq!(Rational::from_integer(3).to_string(), "3");
    }

    #[test]
    fn comparison_survives_huge_denominators() {
        // Cross products here exceed i128 by far; the 256-bit comparison
        // must still get the order right.
        let n: i128 = 10i128.pow(37);
        let a = Rational::new(n + 1, n); // 1 + 1/n
        let b = Rational::new(n, n - 1); // 1 + 1/(n-1)
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), core::cmp::Ordering::Equal);
        // Negative side mirrors.
        assert!(-b < -a);
    }

    #[test]
    fn lcm_addition_keeps_denominators_small() {
        // Summing k copies of 1/(2^40) must keep den = 2^40, not (2^40)^k.
        let step = Rational::new(1, 1 << 40);
        let mut acc = Rational::ZERO;
        for _ in 0..100 {
            acc += step;
        }
        assert_eq!(acc, Rational::new(100, 1 << 40));
        assert_eq!(acc.denom(), (1i128 << 40) / gcd(100, 1 << 40));
    }

    #[test]
    fn f64_is_reporting_only_but_accurate_here() {
        assert_eq!(Rational::new(1, 2).to_f64(), 0.5);
        assert_eq!(Rational::new(-1, 4).to_f64(), -0.25);
    }
}
