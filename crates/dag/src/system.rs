//! Task systems: `τ = {τ_1, …, τ_n}`.

use core::fmt;
use core::ops::Index;

use serde::{Deserialize, Serialize};

use crate::rational::Rational;
use crate::task::{DagTask, DeadlineClass};
use crate::time::Duration;

/// A dense index identifying a task within one [`TaskSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// The dense index of this task.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a task id from a dense index.
    #[must_use]
    pub const fn from_index(index: usize) -> TaskId {
        TaskId(index as u32)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// A finite collection of independent sporadic DAG tasks.
///
/// # Examples
///
/// ```
/// use fedsched_dag::system::TaskSystem;
/// use fedsched_dag::task::DagTask;
/// use fedsched_dag::time::Duration;
/// use fedsched_dag::rational::Rational;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys: TaskSystem = [
///     DagTask::sequential(Duration::new(1), Duration::new(2), Duration::new(4))?,
///     DagTask::sequential(Duration::new(2), Duration::new(6), Duration::new(8))?,
/// ]
/// .into_iter()
/// .collect();
/// assert_eq!(sys.len(), 2);
/// assert_eq!(sys.total_utilization(), Rational::new(1, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSystem {
    tasks: Vec<DagTask>,
}

impl TaskSystem {
    /// Creates an empty task system.
    #[must_use]
    pub fn new() -> TaskSystem {
        TaskSystem::default()
    }

    /// Creates a task system from a vector of tasks.
    #[must_use]
    pub fn from_tasks(tasks: Vec<DagTask>) -> TaskSystem {
        TaskSystem { tasks }
    }

    /// Adds a task, returning its id.
    pub fn push(&mut self, task: DagTask) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(task);
        id
    }

    /// Number of tasks `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the system contains no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`TaskSystem::get`] for a checked
    /// lookup.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &DagTask {
        &self.tasks[id.index()]
    }

    /// Checked task lookup.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&DagTask> {
        self.tasks.get(id.index())
    }

    /// Iterator over `(TaskId, &DagTask)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (TaskId, &DagTask)> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// Iterator over the task ids.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(|i| TaskId(i as u32))
    }

    /// The tasks as a slice, indexed by [`TaskId::index`].
    #[must_use]
    pub fn tasks(&self) -> &[DagTask] {
        &self.tasks
    }

    /// Total utilization `U_sum(τ) = Σ u_i` (paper Section II).
    #[must_use]
    pub fn total_utilization(&self) -> Rational {
        self.tasks.iter().map(DagTask::utilization).sum()
    }

    /// Total density `Σ δ_i`.
    #[must_use]
    pub fn total_density(&self) -> Rational {
        self.tasks.iter().map(DagTask::density).sum()
    }

    /// The largest single-task density `max_i δ_i`, or zero for an empty
    /// system.
    #[must_use]
    pub fn max_density(&self) -> Rational {
        self.tasks
            .iter()
            .map(DagTask::density)
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// Ids of the high-density tasks `τ_high` (δ ≥ 1), in id order.
    #[must_use]
    pub fn high_density_ids(&self) -> Vec<TaskId> {
        self.ids()
            .filter(|&id| self.task(id).is_high_density())
            .collect()
    }

    /// Ids of the low-density tasks `τ_low` (δ < 1), in id order.
    #[must_use]
    pub fn low_density_ids(&self) -> Vec<TaskId> {
        self.ids()
            .filter(|&id| self.task(id).is_low_density())
            .collect()
    }

    /// The strictest deadline class that covers every task in the system:
    /// implicit if all tasks are implicit, constrained if all satisfy
    /// `D ≤ T`, arbitrary otherwise. An empty system reports implicit.
    #[must_use]
    pub fn deadline_class(&self) -> DeadlineClass {
        let mut class = DeadlineClass::Implicit;
        for t in &self.tasks {
            match t.deadline_class() {
                DeadlineClass::Arbitrary => return DeadlineClass::Arbitrary,
                DeadlineClass::Constrained => class = DeadlineClass::Constrained,
                DeadlineClass::Implicit => {}
            }
        }
        class
    }

    /// `true` if every task satisfies `len_i ≤ D_i` — the per-task necessary
    /// feasibility condition. Systems failing this are unschedulable by any
    /// algorithm on unit-speed processors.
    #[must_use]
    pub fn all_chains_feasible(&self) -> bool {
        self.tasks.iter().all(DagTask::is_chain_feasible)
    }

    /// The hyperperiod — least common multiple of all periods — used by the
    /// simulator to bound observation windows. Saturates at `Duration::MAX`
    /// on overflow.
    #[must_use]
    pub fn hyperperiod(&self) -> Duration {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let mut l: u64 = 1;
        for t in &self.tasks {
            let p = t.period().ticks();
            let g = gcd(l, p);
            match (l / g).checked_mul(p) {
                Some(v) => l = v,
                None => return Duration::MAX,
            }
        }
        Duration::new(l)
    }
}

impl FromIterator<DagTask> for TaskSystem {
    fn from_iter<I: IntoIterator<Item = DagTask>>(iter: I) -> Self {
        TaskSystem {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<DagTask> for TaskSystem {
    fn extend<I: IntoIterator<Item = DagTask>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

impl Index<TaskId> for TaskSystem {
    type Output = DagTask;
    fn index(&self, id: TaskId) -> &DagTask {
        self.task(id)
    }
}

impl<'a> IntoIterator for &'a TaskSystem {
    type Item = &'a DagTask;
    type IntoIter = std::slice::Iter<'a, DagTask>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

impl IntoIterator for TaskSystem {
    type Item = DagTask;
    type IntoIter = std::vec::IntoIter<DagTask>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl fmt::Display for TaskSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TaskSystem(n={}, U_sum={}, class={})",
            self.len(),
            self.total_utilization(),
            self.deadline_class()
        )?;
        for (id, t) in self.iter() {
            writeln!(f, "  {id}: {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(c: u64, d: u64, t: u64) -> DagTask {
        DagTask::sequential(Duration::new(c), Duration::new(d), Duration::new(t)).unwrap()
    }

    fn sample() -> TaskSystem {
        // u = 1/4, δ = 1/2; u = δ = 3/2 (high density); u = 1/2, δ = 1.
        TaskSystem::from_tasks(vec![seq(1, 2, 4), seq(6, 4, 4), seq(3, 3, 6)])
    }

    #[test]
    fn aggregates() {
        let s = sample();
        assert_eq!(
            s.total_utilization(),
            Rational::new(1, 4) + Rational::new(3, 2) + Rational::new(1, 2)
        );
        assert_eq!(
            s.total_density(),
            Rational::new(1, 2) + Rational::new(3, 2) + Rational::ONE
        );
        assert_eq!(s.max_density(), Rational::new(3, 2));
    }

    #[test]
    fn density_partition() {
        let s = sample();
        assert_eq!(s.high_density_ids(), vec![TaskId(1), TaskId(2)]);
        assert_eq!(s.low_density_ids(), vec![TaskId(0)]);
    }

    #[test]
    fn deadline_class_aggregation() {
        let implicit = TaskSystem::from_tasks(vec![seq(1, 4, 4)]);
        assert_eq!(implicit.deadline_class(), DeadlineClass::Implicit);
        let constrained = TaskSystem::from_tasks(vec![seq(1, 4, 4), seq(1, 3, 4)]);
        assert_eq!(constrained.deadline_class(), DeadlineClass::Constrained);
        let arbitrary = TaskSystem::from_tasks(vec![seq(1, 3, 4), seq(1, 6, 4)]);
        assert_eq!(arbitrary.deadline_class(), DeadlineClass::Arbitrary);
        assert_eq!(TaskSystem::new().deadline_class(), DeadlineClass::Implicit);
    }

    #[test]
    fn hyperperiod() {
        let s = TaskSystem::from_tasks(vec![seq(1, 4, 4), seq(1, 6, 6), seq(1, 10, 10)]);
        assert_eq!(s.hyperperiod(), Duration::new(60));
        assert_eq!(TaskSystem::new().hyperperiod(), Duration::new(1));
    }

    #[test]
    fn hyperperiod_overflow_saturates() {
        let s = TaskSystem::from_tasks(vec![
            seq(1, u64::MAX - 1, u64::MAX - 1),
            seq(1, u64::MAX - 2, u64::MAX - 2),
        ]);
        assert_eq!(s.hyperperiod(), Duration::MAX);
    }

    #[test]
    fn collection_traits() {
        let s: TaskSystem = sample().into_iter().collect();
        assert_eq!(s.len(), 3);
        let mut s2 = TaskSystem::new();
        s2.extend(sample());
        assert_eq!(s2, s);
        assert_eq!(s[TaskId(1)].volume(), Duration::new(6));
        assert_eq!((&s).into_iter().count(), 3);
        assert_eq!(s.get(TaskId(99)), None);
    }

    #[test]
    fn chain_feasibility_aggregate() {
        assert!(!sample().all_chains_feasible()); // τ1: len 6 > D 4
        let ok = TaskSystem::from_tasks(vec![seq(1, 2, 4)]);
        assert!(ok.all_chains_feasible());
    }

    #[test]
    fn display_lists_tasks() {
        let s = sample();
        let txt = s.to_string();
        assert!(txt.contains("n=3"));
        assert!(txt.contains("τ0"));
        assert!(txt.contains("τ2"));
    }

    #[test]
    fn serde_roundtrip() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: TaskSystem = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
