//! Error types for model construction and validation.

use core::fmt;

use crate::graph::VertexId;

/// An error raised while building a precedence graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphBuildError {
    /// An edge endpoint was not a vertex of the builder.
    UnknownVertex {
        /// The offending id.
        vertex: VertexId,
    },
    /// An edge from a vertex to itself was requested.
    SelfLoop {
        /// The offending vertex.
        vertex: VertexId,
    },
    /// The same directed edge was added twice.
    DuplicateEdge {
        /// Edge source.
        from: VertexId,
        /// Edge target.
        to: VertexId,
    },
    /// The edges form a directed cycle, so the graph is not a DAG.
    Cycle,
}

impl fmt::Display for GraphBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphBuildError::UnknownVertex { vertex } => {
                write!(f, "edge endpoint {vertex} is not a vertex of this graph")
            }
            GraphBuildError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed")
            }
            GraphBuildError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            GraphBuildError::Cycle => write!(f, "edges form a directed cycle"),
        }
    }
}

impl std::error::Error for GraphBuildError {}

/// An error raised while constructing a sporadic DAG task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskBuildError {
    /// The relative deadline was zero.
    ZeroDeadline,
    /// The period was zero.
    ZeroPeriod,
    /// The DAG has no vertices, so the task would generate empty dag-jobs.
    EmptyDag,
    /// A vertex has zero WCET; the paper's model has `e_v ∈ ℕ` with jobs
    /// that perform actual work, and zero-WCET vertices break density and
    /// list-scheduling invariants downstream.
    ZeroWcet {
        /// The offending vertex.
        vertex: VertexId,
    },
}

impl fmt::Display for TaskBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskBuildError::ZeroDeadline => write!(f, "relative deadline must be positive"),
            TaskBuildError::ZeroPeriod => write!(f, "period must be positive"),
            TaskBuildError::EmptyDag => write!(f, "task DAG must contain at least one vertex"),
            TaskBuildError::ZeroWcet { vertex } => {
                write!(f, "vertex {vertex} has zero worst-case execution time")
            }
        }
    }
}

impl std::error::Error for TaskBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_trailing_punctuation() {
        let msgs = [
            GraphBuildError::UnknownVertex {
                vertex: VertexId::from_index(3),
            }
            .to_string(),
            GraphBuildError::SelfLoop {
                vertex: VertexId::from_index(0),
            }
            .to_string(),
            GraphBuildError::DuplicateEdge {
                from: VertexId::from_index(0),
                to: VertexId::from_index(1),
            }
            .to_string(),
            GraphBuildError::Cycle.to_string(),
            TaskBuildError::ZeroDeadline.to_string(),
            TaskBuildError::ZeroPeriod.to_string(),
            TaskBuildError::EmptyDag.to_string(),
            TaskBuildError::ZeroWcet {
                vertex: VertexId::from_index(2),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "{m:?} ends with punctuation");
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with("edge"));
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<GraphBuildError>();
        assert_error::<TaskBuildError>();
    }
}
