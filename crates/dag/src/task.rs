//! The sporadic DAG task: `τ_i = (G_i, D_i, T_i)`.
//!
//! A [`DagTask`] couples a precedence graph with a relative deadline `D` and
//! a period (minimum inter-arrival separation) `T`. The derived quantities
//! the paper's analysis is built on — `len_i`, `vol_i`, utilization `u_i`,
//! density `δ_i` — are computed once at construction time and cached.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TaskBuildError;
use crate::graph::{Chain, Dag};
use crate::rational::Rational;
use crate::time::Duration;

/// Deadline class of a task or task system (paper Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeadlineClass {
    /// `D = T`.
    Implicit,
    /// `D ≤ T` (strictly `D < T`, since `D = T` is reported as implicit).
    Constrained,
    /// `D > T`.
    Arbitrary,
}

impl fmt::Display for DeadlineClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeadlineClass::Implicit => "implicit-deadline",
            DeadlineClass::Constrained => "constrained-deadline",
            DeadlineClass::Arbitrary => "arbitrary-deadline",
        };
        f.write_str(s)
    }
}

/// How a federated analysis routes a task (paper Section III): arbitrary
/// deadlines are rejected outright, high-density tasks (`δ ≥ 1`) get
/// dedicated clusters, and low-density tasks (`δ < 1`) are partitioned
/// onto the shared pool.
///
/// This is the single source of truth for the density/deadline routing
/// decision; both batch FEDCONS (`fedsched-core`) and the online admission
/// service (`fedsched-service`) dispatch on it rather than re-deriving the
/// thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskClass {
    /// `D > T` — outside the constrained-deadline model, rejected by every
    /// analysis in this workspace.
    ArbitraryDeadline,
    /// `D ≤ T` and `δ ≥ 1` — needs a dedicated cluster sized by `MINPROCS`.
    HighDensity,
    /// `D ≤ T` and `δ < 1` — a candidate for the shared partitioned-EDF pool.
    LowDensity,
}

impl fmt::Display for TaskClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskClass::ArbitraryDeadline => "arbitrary-deadline",
            TaskClass::HighDensity => "high-density",
            TaskClass::LowDensity => "low-density",
        };
        f.write_str(s)
    }
}

/// A sporadic DAG task `τ_i = (G_i, D_i, T_i)`.
///
/// Invariants enforced at construction:
///
/// * the DAG is non-empty and every vertex WCET is positive;
/// * `D > 0` and `T > 0`.
///
/// Note that `len_i > D_i` (an infeasible task on *any* number of unit-speed
/// processors) is deliberately representable: schedulability analyses must be
/// able to reject such tasks rather than being unable to express them.
///
/// # Examples
///
/// The task of the paper's Figure 1 ships as a constructor:
///
/// ```
/// use fedsched_dag::examples::paper_figure1;
/// use fedsched_dag::rational::Rational;
/// use fedsched_dag::time::Duration;
///
/// let tau1 = paper_figure1();
/// assert_eq!(tau1.longest_chain_length(), Duration::new(6));
/// assert_eq!(tau1.volume(), Duration::new(9));
/// assert_eq!(tau1.density(), Rational::new(9, 16));
/// assert_eq!(tau1.utilization(), Rational::new(9, 20));
/// assert!(tau1.is_low_density());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagTask {
    dag: Dag,
    deadline: Duration,
    period: Duration,
    // Cached derived quantities.
    volume: Duration,
    longest_chain: Chain,
}

impl DagTask {
    /// Creates a sporadic DAG task from its graph, relative deadline `D` and
    /// period `T`.
    ///
    /// # Errors
    ///
    /// Returns an error if the deadline or period is zero, the DAG is empty,
    /// or any vertex has zero WCET.
    pub fn new(dag: Dag, deadline: Duration, period: Duration) -> Result<DagTask, TaskBuildError> {
        if deadline.is_zero() {
            return Err(TaskBuildError::ZeroDeadline);
        }
        if period.is_zero() {
            return Err(TaskBuildError::ZeroPeriod);
        }
        if dag.vertex_count() == 0 {
            return Err(TaskBuildError::EmptyDag);
        }
        if let Some(v) = dag.vertices().find(|&v| dag.wcet(v).is_zero()) {
            return Err(TaskBuildError::ZeroWcet { vertex: v });
        }
        let volume = dag.volume();
        let longest_chain = dag.longest_chain();
        Ok(DagTask {
            dag,
            deadline,
            period,
            volume,
            longest_chain,
        })
    }

    /// Convenience constructor for an implicit-deadline task (`D = T`).
    ///
    /// # Errors
    ///
    /// Same as [`DagTask::new`].
    pub fn implicit_deadline(dag: Dag, period: Duration) -> Result<DagTask, TaskBuildError> {
        DagTask::new(dag, period, period)
    }

    /// Convenience constructor for a classic sequential three-parameter
    /// sporadic task `(C, D, T)` — a single-vertex DAG.
    ///
    /// # Errors
    ///
    /// Same as [`DagTask::new`].
    pub fn sequential(
        wcet: Duration,
        deadline: Duration,
        period: Duration,
    ) -> Result<DagTask, TaskBuildError> {
        DagTask::new(Dag::single_vertex(wcet), deadline, period)
    }

    /// The precedence graph `G_i`.
    #[must_use]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The relative deadline `D_i`.
    #[must_use]
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// The period (minimum inter-arrival separation) `T_i`.
    #[must_use]
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Total WCET per dag-job, `vol_i` (cached).
    #[must_use]
    pub fn volume(&self) -> Duration {
        self.volume
    }

    /// Length of the longest chain, `len_i` (cached).
    #[must_use]
    pub fn longest_chain_length(&self) -> Duration {
        self.longest_chain.length
    }

    /// The longest chain itself, with a witnessing vertex path (cached).
    #[must_use]
    pub fn longest_chain(&self) -> &Chain {
        &self.longest_chain
    }

    /// `min(D_i, T_i)` — the density denominator.
    #[must_use]
    pub fn deadline_period_min(&self) -> Duration {
        self.deadline.min(self.period)
    }

    /// Utilization `u_i = vol_i / T_i`.
    #[must_use]
    pub fn utilization(&self) -> Rational {
        Rational::ratio(self.volume, self.period)
    }

    /// Density `δ_i = vol_i / min(D_i, T_i)`.
    #[must_use]
    pub fn density(&self) -> Rational {
        Rational::ratio(self.volume, self.deadline_period_min())
    }

    /// `true` if `u_i ≥ 1` (*high-utilization*, terminology of Li et al.).
    #[must_use]
    pub fn is_high_utilization(&self) -> bool {
        self.utilization() >= Rational::ONE
    }

    /// `true` if `δ_i ≥ 1` (*high-density*, paper Section II).
    #[must_use]
    pub fn is_high_density(&self) -> bool {
        self.density() >= Rational::ONE
    }

    /// `true` if `δ_i < 1` (*low-density*).
    #[must_use]
    pub fn is_low_density(&self) -> bool {
        !self.is_high_density()
    }

    /// Deadline class of this task.
    #[must_use]
    pub fn deadline_class(&self) -> DeadlineClass {
        if self.deadline == self.period {
            DeadlineClass::Implicit
        } else if self.deadline < self.period {
            DeadlineClass::Constrained
        } else {
            DeadlineClass::Arbitrary
        }
    }

    /// The federated routing class of this task: the deadline-class check
    /// takes precedence (arbitrary deadlines are outside the model), then
    /// the density threshold `δ ≥ 1` splits dedicated-cluster tasks from
    /// shared-pool candidates.
    #[must_use]
    pub fn classify(&self) -> TaskClass {
        if self.deadline_class() == DeadlineClass::Arbitrary {
            TaskClass::ArbitraryDeadline
        } else if self.is_high_density() {
            TaskClass::HighDensity
        } else {
            TaskClass::LowDensity
        }
    }

    /// Whether the task can meet its deadline on *any* number of unit-speed
    /// processors: `len_i ≤ D_i` (standard necessary feasibility condition).
    #[must_use]
    pub fn is_chain_feasible(&self) -> bool {
        self.longest_chain.length <= self.deadline
    }

    /// The smallest conceivable processor count for the task viewed in
    /// isolation: `⌈vol_i / D_i⌉` for constrained deadlines — any valid
    /// schedule must provide at least this much capacity in a window of
    /// length `D_i`. Equals `⌈δ_i⌉` when `D_i ≤ T_i`.
    #[must_use]
    pub fn min_processors_lower_bound(&self) -> u32 {
        let d = self.deadline_period_min();
        u32::try_from(self.volume.div_ceil(d)).expect("processor bound fits in u32")
    }
}

impl fmt::Display for DagTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DagTask(|V|={}, |E|={}, vol={}, len={}, D={}, T={})",
            self.dag.vertex_count(),
            self.dag.edge_count(),
            self.volume,
            self.longest_chain.length,
            self.deadline,
            self.period
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn chain_task(wcets: &[u64], d: u64, t: u64) -> DagTask {
        let mut b = DagBuilder::new();
        let vs = b.add_vertices(wcets.iter().map(|&w| Duration::new(w)));
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        DagTask::new(b.build().unwrap(), Duration::new(d), Duration::new(t)).unwrap()
    }

    #[test]
    fn cached_quantities() {
        let t = chain_task(&[2, 3, 4], 10, 12);
        assert_eq!(t.volume(), Duration::new(9));
        assert_eq!(t.longest_chain_length(), Duration::new(9));
        assert_eq!(t.longest_chain().vertices.len(), 3);
        assert_eq!(t.deadline_period_min(), Duration::new(10));
    }

    #[test]
    fn utilization_and_density() {
        let t = chain_task(&[2, 3, 4], 10, 12);
        assert_eq!(t.utilization(), Rational::new(9, 12));
        assert_eq!(t.density(), Rational::new(9, 10));
        assert!(t.is_low_density());
        assert!(!t.is_high_utilization());
    }

    #[test]
    fn high_density_boundary_is_inclusive() {
        // δ = 9/9 = 1 is high-density per the paper ("density ≥ 1").
        let t = chain_task(&[9], 9, 20);
        assert_eq!(t.density(), Rational::ONE);
        assert!(t.is_high_density());
        assert!(!t.is_low_density());
    }

    #[test]
    fn deadline_classes() {
        assert_eq!(
            chain_task(&[1], 5, 5).deadline_class(),
            DeadlineClass::Implicit
        );
        assert_eq!(
            chain_task(&[1], 4, 5).deadline_class(),
            DeadlineClass::Constrained
        );
        assert_eq!(
            chain_task(&[1], 6, 5).deadline_class(),
            DeadlineClass::Arbitrary
        );
        assert_eq!(
            DeadlineClass::Constrained.to_string(),
            "constrained-deadline"
        );
    }

    #[test]
    fn classify_routes_by_deadline_class_then_density() {
        // Arbitrary deadline wins even at high density.
        assert_eq!(
            chain_task(&[9], 6, 5).classify(),
            TaskClass::ArbitraryDeadline
        );
        // δ = 9/9 = 1: the boundary is high-density.
        assert_eq!(chain_task(&[9], 9, 20).classify(), TaskClass::HighDensity);
        assert_eq!(chain_task(&[2], 10, 10).classify(), TaskClass::LowDensity);
        assert_eq!(TaskClass::HighDensity.to_string(), "high-density");
    }

    #[test]
    fn chain_feasibility() {
        assert!(chain_task(&[3, 3], 6, 10).is_chain_feasible());
        assert!(!chain_task(&[3, 4], 6, 10).is_chain_feasible());
    }

    #[test]
    fn min_processor_lower_bound() {
        // vol = 9, D = 4 ⇒ at least ⌈9/4⌉ = 3 processors.
        let mut b = DagBuilder::new();
        b.add_vertices([3, 3, 3].map(Duration::new));
        let t = DagTask::new(b.build().unwrap(), Duration::new(4), Duration::new(10)).unwrap();
        assert_eq!(t.min_processors_lower_bound(), 3);
        assert_eq!(t.density(), Rational::new(9, 4));
        assert_eq!(t.density().ceil(), 3);
    }

    #[test]
    fn constructor_validation() {
        let dag = Dag::single_vertex(Duration::new(1));
        assert_eq!(
            DagTask::new(dag.clone(), Duration::ZERO, Duration::new(5)),
            Err(TaskBuildError::ZeroDeadline)
        );
        assert_eq!(
            DagTask::new(dag.clone(), Duration::new(5), Duration::ZERO),
            Err(TaskBuildError::ZeroPeriod)
        );
        let empty = DagBuilder::new().build().unwrap();
        assert_eq!(
            DagTask::new(empty, Duration::new(5), Duration::new(5)),
            Err(TaskBuildError::EmptyDag)
        );
        let zero_wcet = Dag::single_vertex(Duration::ZERO);
        assert!(matches!(
            DagTask::new(zero_wcet, Duration::new(5), Duration::new(5)),
            Err(TaskBuildError::ZeroWcet { .. })
        ));
    }

    #[test]
    fn sequential_constructor_matches_three_parameter_model() {
        let t = DagTask::sequential(Duration::new(2), Duration::new(8), Duration::new(10)).unwrap();
        assert_eq!(t.volume(), Duration::new(2));
        assert_eq!(t.longest_chain_length(), Duration::new(2));
        assert_eq!(t.dag().vertex_count(), 1);
    }

    #[test]
    fn implicit_constructor() {
        let t = DagTask::implicit_deadline(Dag::single_vertex(Duration::new(2)), Duration::new(4))
            .unwrap();
        assert_eq!(t.deadline_class(), DeadlineClass::Implicit);
        assert_eq!(t.utilization(), t.density());
    }

    #[test]
    fn display_contains_parameters() {
        let t = chain_task(&[2, 3], 7, 9);
        let s = t.to_string();
        assert!(s.contains("vol=5"));
        assert!(s.contains("len=5"));
        assert!(s.contains("D=7"));
        assert!(s.contains("T=9"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = chain_task(&[2, 3, 4], 10, 12);
        let json = serde_json::to_string(&t).unwrap();
        let back: DagTask = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
