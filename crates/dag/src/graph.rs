//! A self-contained weighted directed acyclic graph.
//!
//! [`Dag`] stores the precedence structure `G_i = (V_i, E_i)` of a sporadic
//! DAG task: each vertex carries a worst-case execution time (WCET), each
//! directed edge `(v, w)` requires `v` to complete before `w` may start.
//!
//! The container is immutable once built; construct it through [`DagBuilder`],
//! which rejects self-loops, duplicate edges and cycles. Vertices are indexed
//! densely by [`VertexId`] in insertion order, which makes downstream
//! schedulers trivially array-addressable.
//!
//! The algorithms the paper relies on are provided directly:
//!
//! * [`Dag::topological_order`] — Kahn's algorithm, `O(|V| + |E|)`;
//! * [`Dag::longest_chain`] — `len_i`, the longest WCET-weighted chain, by
//!   dynamic programming over a topological order (linear time, exactly as
//!   the paper describes in Section II);
//! * [`Dag::volume`] — `vol_i`, the sum of all WCETs;
//! * reachability, sources/sinks, and DOT export for debugging.

use core::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::error::GraphBuildError;
use crate::time::Duration;

/// A dense index identifying a vertex (a sequential *job*) within one DAG.
///
/// Identifiers are only meaningful relative to the [`Dag`] that produced
/// them; they index `0..dag.vertex_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VertexId(pub(crate) u32);

impl VertexId {
    /// The dense index of this vertex.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a vertex id from a dense index.
    ///
    /// Only ids in `0..dag.vertex_count()` are valid for a given DAG; using
    /// an out-of-range id with that DAG's accessors panics.
    #[must_use]
    pub const fn from_index(index: usize) -> VertexId {
        VertexId(index as u32)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An immutable weighted DAG: the precedence graph of one sporadic DAG task.
///
/// # Examples
///
/// A three-vertex fork (`a → b`, `a → c`):
///
/// ```
/// use fedsched_dag::graph::DagBuilder;
/// use fedsched_dag::time::Duration;
///
/// # fn main() -> Result<(), fedsched_dag::error::GraphBuildError> {
/// let mut b = DagBuilder::new();
/// let a = b.add_vertex(Duration::new(2));
/// let x = b.add_vertex(Duration::new(3));
/// let y = b.add_vertex(Duration::new(1));
/// b.add_edge(a, x)?;
/// b.add_edge(a, y)?;
/// let dag = b.build()?;
/// assert_eq!(dag.volume(), Duration::new(6));
/// assert_eq!(dag.longest_chain().length, Duration::new(5)); // a → x
/// # Ok(())
/// # }
/// ```
/// Adjacency is stored as a CSR-style arena: one flat `targets` array per
/// direction, sliced by `offsets[v]..offsets[v + 1]`. Repeated traversals
/// (the List-Scheduling kernel, chain DP, reachability) walk contiguous
/// memory instead of chasing one heap allocation per vertex, and per-vertex
/// slices stay order-preserving: targets appear in edge-insertion order,
/// exactly as the former nested `Vec<Vec<VertexId>>` layout stored them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    wcets: Vec<Duration>,
    /// `succ_offsets[v]..succ_offsets[v + 1]` indexes `succ_targets`.
    succ_offsets: Vec<u32>,
    succ_targets: Vec<VertexId>,
    /// `pred_offsets[v]..pred_offsets[v + 1]` indexes `pred_targets`.
    pred_offsets: Vec<u32>,
    pred_targets: Vec<VertexId>,
    /// A topological order, computed once at build time.
    topo: Vec<VertexId>,
}

/// The longest WCET-weighted chain of a DAG (`len_i` in the paper), together
/// with one witnessing path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chain {
    /// Sum of the WCETs of the vertices on the chain.
    pub length: Duration,
    /// The vertices of one longest chain, in precedence order.
    pub vertices: Vec<VertexId>,
}

impl Dag {
    /// Builds a single-vertex DAG (the degenerate case of Example 2 in the
    /// paper: one sequential job).
    #[must_use]
    pub fn single_vertex(wcet: Duration) -> Dag {
        let mut b = DagBuilder::new();
        b.add_vertex(wcet);
        b.build().expect("a single vertex cannot form a cycle")
    }

    /// Number of vertices `|V|`.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.wcets.len()
    }

    /// Number of directed edges `|E|`.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succ_targets.len()
    }

    /// Iterator over all vertex ids, in dense index order.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        (0..self.wcets.len()).map(|i| VertexId(i as u32))
    }

    /// Iterator over all edges `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |v| self.successors(v).iter().map(move |&w| (v, w)))
    }

    /// The WCET `e_v` of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this DAG.
    #[must_use]
    pub fn wcet(&self, v: VertexId) -> Duration {
        self.wcets[v.index()]
    }

    /// All WCETs, indexed by [`VertexId::index`].
    #[must_use]
    pub fn wcets(&self) -> &[Duration] {
        &self.wcets
    }

    /// Direct successors of `v` (vertices that must wait for `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this DAG.
    #[must_use]
    pub fn successors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.succ_offsets[v.index()] as usize;
        let hi = self.succ_offsets[v.index() + 1] as usize;
        &self.succ_targets[lo..hi]
    }

    /// Direct predecessors of `v` (vertices `v` must wait for).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this DAG.
    #[must_use]
    pub fn predecessors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.pred_offsets[v.index()] as usize;
        let hi = self.pred_offsets[v.index() + 1] as usize;
        &self.pred_targets[lo..hi]
    }

    /// In-degree of `v`.
    #[must_use]
    pub fn in_degree(&self, v: VertexId) -> usize {
        (self.pred_offsets[v.index() + 1] - self.pred_offsets[v.index()]) as usize
    }

    /// Out-degree of `v`.
    #[must_use]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.succ_offsets[v.index() + 1] - self.succ_offsets[v.index()]) as usize
    }

    /// Vertices with no predecessors.
    #[must_use]
    pub fn sources(&self) -> Vec<VertexId> {
        self.vertices()
            .filter(|&v| self.in_degree(v) == 0)
            .collect()
    }

    /// Vertices with no successors.
    #[must_use]
    pub fn sinks(&self) -> Vec<VertexId> {
        self.vertices()
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }

    /// A topological order of the vertices (every edge goes forward in it).
    ///
    /// The order is computed once at build time and is deterministic:
    /// Kahn's algorithm with a FIFO frontier seeded in index order.
    #[must_use]
    pub fn topological_order(&self) -> &[VertexId] {
        &self.topo
    }

    /// Total WCET `vol_i = Σ_v e_v` of one dag-job (paper Section II).
    ///
    /// Computed in time linear in `|V|`.
    #[must_use]
    pub fn volume(&self) -> Duration {
        self.wcets.iter().copied().sum()
    }

    /// The longest WCET-weighted chain `len_i` with a witnessing path
    /// (paper Section II): topological order + dynamic programming, so
    /// `O(|V| + |E|)`.
    ///
    /// For an empty DAG the chain has zero length and no vertices.
    #[must_use]
    pub fn longest_chain(&self) -> Chain {
        let n = self.vertex_count();
        if n == 0 {
            return Chain {
                length: Duration::ZERO,
                vertices: Vec::new(),
            };
        }
        // dist[v] = length of the longest chain ending at v (inclusive).
        let mut dist = vec![Duration::ZERO; n];
        let mut pred: Vec<Option<VertexId>> = vec![None; n];
        for &v in &self.topo {
            let best_in = self
                .predecessors(v)
                .iter()
                .copied()
                .max_by_key(|p| dist[p.index()]);
            let base = match best_in {
                Some(p) => {
                    pred[v.index()] = Some(p);
                    dist[p.index()]
                }
                None => Duration::ZERO,
            };
            dist[v.index()] = base + self.wcet(v);
        }
        let end = self
            .vertices()
            .max_by_key(|v| dist[v.index()])
            .expect("non-empty DAG");
        let mut vertices = vec![end];
        let mut cur = end;
        while let Some(p) = pred[cur.index()] {
            vertices.push(p);
            cur = p;
        }
        vertices.reverse();
        Chain {
            length: dist[end.index()],
            vertices,
        }
    }

    /// Earliest possible start time of each vertex assuming unlimited
    /// processors: the longest chain length strictly *before* the vertex.
    ///
    /// Useful as a per-vertex lower bound for schedulers and as the infinite-
    /// processor makespan profile.
    #[must_use]
    pub fn earliest_starts(&self) -> Vec<Duration> {
        let n = self.vertex_count();
        let mut est = vec![Duration::ZERO; n];
        for &v in &self.topo {
            let ready = self
                .predecessors(v)
                .iter()
                .map(|p| est[p.index()] + self.wcet(*p))
                .max()
                .unwrap_or(Duration::ZERO);
            est[v.index()] = ready;
        }
        est
    }

    /// Returns `true` if `to` is reachable from `from` by a directed path
    /// (including `from == to`).
    ///
    /// Breadth-first search, `O(|V| + |E|)`.
    ///
    /// # Panics
    ///
    /// Panics if either id is not a vertex of this DAG.
    #[must_use]
    pub fn is_reachable(&self, from: VertexId, to: VertexId) -> bool {
        assert!(to.index() < self.vertex_count(), "vertex out of range");
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.vertex_count()];
        let mut queue = vec![from];
        seen[from.index()] = true;
        while let Some(v) = queue.pop() {
            for &w in self.successors(v) {
                if w == to {
                    return true;
                }
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push(w);
                }
            }
        }
        false
    }

    /// The set of all ancestor vertices of `v` (excluding `v`).
    #[must_use]
    pub fn ancestors(&self, v: VertexId) -> Vec<VertexId> {
        let mut seen = vec![false; self.vertex_count()];
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            for &p in self.predecessors(x) {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        self.vertices().filter(|w| seen[w.index()]).collect()
    }

    /// Renders the DAG in Graphviz DOT syntax; vertices are labelled with
    /// their WCETs as in the paper's Figure 1.
    #[must_use]
    pub fn to_dot(&self, name: &str) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph {name} {{");
        let _ = writeln!(s, "  rankdir=LR;");
        for v in self.vertices() {
            let _ = writeln!(
                s,
                "  {} [label=\"{} ({})\", shape=circle];",
                v.index(),
                v,
                self.wcet(v)
            );
        }
        for (a, b) in self.edges() {
            let _ = writeln!(s, "  {} -> {};", a.index(), b.index());
        }
        s.push_str("}\n");
        s
    }
}

/// Incremental builder for [`Dag`]; the only way to construct one.
///
/// Rejects self-loops and duplicate edges eagerly, and cycles at
/// [`DagBuilder::build`] time.
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    wcets: Vec<Duration>,
    edges: Vec<(VertexId, VertexId)>,
}

impl DagBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> DagBuilder {
        DagBuilder::default()
    }

    /// Creates a builder pre-sized for `vertices` vertices.
    #[must_use]
    pub fn with_capacity(vertices: usize) -> DagBuilder {
        DagBuilder {
            wcets: Vec::with_capacity(vertices),
            edges: Vec::new(),
        }
    }

    /// Adds a vertex with the given WCET and returns its id.
    pub fn add_vertex(&mut self, wcet: Duration) -> VertexId {
        let id = VertexId(self.wcets.len() as u32);
        self.wcets.push(wcet);
        id
    }

    /// Adds several vertices at once, returning their ids in order.
    pub fn add_vertices<I>(&mut self, wcets: I) -> Vec<VertexId>
    where
        I: IntoIterator<Item = Duration>,
    {
        wcets.into_iter().map(|w| self.add_vertex(w)).collect()
    }

    /// Adds the precedence edge `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphBuildError::UnknownVertex`] if either endpoint was not
    /// created by this builder, [`GraphBuildError::SelfLoop`] if
    /// `from == to`, and [`GraphBuildError::DuplicateEdge`] if the edge was
    /// already added.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) -> Result<(), GraphBuildError> {
        let n = self.wcets.len() as u32;
        if from.0 >= n || to.0 >= n {
            return Err(GraphBuildError::UnknownVertex {
                vertex: if from.0 >= n { from } else { to },
            });
        }
        if from == to {
            return Err(GraphBuildError::SelfLoop { vertex: from });
        }
        if self.edges.contains(&(from, to)) {
            return Err(GraphBuildError::DuplicateEdge { from, to });
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Number of vertices added so far.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.wcets.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphBuildError::Cycle`] if the added edges form a directed
    /// cycle.
    pub fn build(self) -> Result<Dag, GraphBuildError> {
        let n = self.wcets.len();
        u32::try_from(self.edges.len()).expect("edge count exceeds u32 range");
        // Counting sort of the edge list into both CSR arenas. The fill is
        // stable, so each per-vertex slice lists its targets in
        // edge-insertion order — the same order the nested-Vec layout
        // produced (longest-chain tie-breaking observes it).
        let mut succ_offsets = vec![0u32; n + 1];
        let mut pred_offsets = vec![0u32; n + 1];
        for &(a, b) in &self.edges {
            succ_offsets[a.index() + 1] += 1;
            pred_offsets[b.index() + 1] += 1;
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
            pred_offsets[i + 1] += pred_offsets[i];
        }
        let mut succ_cursor: Vec<u32> = succ_offsets[..n].to_vec();
        let mut pred_cursor: Vec<u32> = pred_offsets[..n].to_vec();
        let mut succ_targets = vec![VertexId(0); self.edges.len()];
        let mut pred_targets = vec![VertexId(0); self.edges.len()];
        for &(a, b) in &self.edges {
            succ_targets[succ_cursor[a.index()] as usize] = b;
            succ_cursor[a.index()] += 1;
            pred_targets[pred_cursor[b.index()] as usize] = a;
            pred_cursor[b.index()] += 1;
        }
        // Kahn's algorithm; deterministic FIFO order.
        let mut in_deg: Vec<u32> = (0..n)
            .map(|i| pred_offsets[i + 1] - pred_offsets[i])
            .collect();
        let mut frontier: std::collections::VecDeque<VertexId> = (0..n)
            .filter(|&i| in_deg[i] == 0)
            .map(|i| VertexId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = frontier.pop_front() {
            topo.push(v);
            let lo = succ_offsets[v.index()] as usize;
            let hi = succ_offsets[v.index() + 1] as usize;
            for &w in &succ_targets[lo..hi] {
                in_deg[w.index()] -= 1;
                if in_deg[w.index()] == 0 {
                    frontier.push_back(w);
                }
            }
        }
        if topo.len() != n {
            return Err(GraphBuildError::Cycle);
        }
        Ok(Dag {
            wcets: self.wcets,
            succ_offsets,
            succ_targets,
            pred_offsets,
            pred_targets,
            topo,
        })
    }
}

/// The serialized form of [`Dag`] is frozen to the shape the former
/// nested-adjacency layout derived: `{wcets, successors, predecessors,
/// edge_count, topo}` with per-vertex target lists. Snapshots, WAL records
/// and wire requests written before the CSR refactor decode unchanged, and
/// re-serialization stays byte-identical.
impl Serialize for Dag {
    fn to_value(&self) -> Value {
        let nested = |lists: &mut dyn Iterator<Item = &[VertexId]>| {
            Value::Seq(lists.map(Serialize::to_value).collect())
        };
        Value::Map(vec![
            ("wcets".to_owned(), self.wcets.to_value()),
            (
                "successors".to_owned(),
                nested(&mut self.vertices().map(|v| self.successors(v))),
            ),
            (
                "predecessors".to_owned(),
                nested(&mut self.vertices().map(|v| self.predecessors(v))),
            ),
            ("edge_count".to_owned(), self.edge_count().to_value()),
            ("topo".to_owned(), self.topo.to_value()),
        ])
    }
}

impl Deserialize for Dag {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError::expected("object", "Dag"))?;
        let field = |key| serde::__map_field(map, key, "Dag");
        let wcets = Vec::<Duration>::from_value(field("wcets")?)?;
        let successors = Vec::<Vec<VertexId>>::from_value(field("successors")?)?;
        let predecessors = Vec::<Vec<VertexId>>::from_value(field("predecessors")?)?;
        let edge_count = usize::from_value(field("edge_count")?)?;
        let topo = Vec::<VertexId>::from_value(field("topo")?)?;
        let n = wcets.len();
        if successors.len() != n || predecessors.len() != n || topo.len() != n {
            return Err(DeError::custom(
                "Dag adjacency/topo length disagrees with vertex count",
            ));
        }
        let succ_total: usize = successors.iter().map(Vec::len).sum();
        let pred_total: usize = predecessors.iter().map(Vec::len).sum();
        if succ_total != edge_count || pred_total != edge_count {
            return Err(DeError::custom("Dag edge_count disagrees with adjacency"));
        }
        if u32::try_from(edge_count).is_err() {
            return Err(DeError::custom("Dag edge count exceeds u32 range"));
        }
        let in_range = |ids: &[VertexId]| ids.iter().all(|id| id.index() < n);
        if !successors.iter().all(|s| in_range(s))
            || !predecessors.iter().all(|p| in_range(p))
            || !in_range(&topo)
        {
            return Err(DeError::custom("Dag vertex id out of range"));
        }
        let flatten = |nested: &[Vec<VertexId>]| {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut targets = Vec::with_capacity(edge_count);
            offsets.push(0u32);
            for list in nested {
                targets.extend_from_slice(list);
                offsets.push(targets.len() as u32);
            }
            (offsets, targets)
        };
        let (succ_offsets, succ_targets) = flatten(&successors);
        let (pred_offsets, pred_targets) = flatten(&predecessors);
        Ok(Dag {
            wcets,
            succ_offsets,
            succ_targets,
            pred_offsets,
            pred_targets,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // a → b → d, a → c → d
        let mut b = DagBuilder::new();
        let vs = b.add_vertices([1, 2, 3, 4].map(Duration::new));
        b.add_edge(vs[0], vs[1]).unwrap();
        b.add_edge(vs[0], vs[2]).unwrap();
        b.add_edge(vs[1], vs[3]).unwrap();
        b.add_edge(vs[2], vs[3]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_basic_counts() {
        let d = diamond();
        assert_eq!(d.vertex_count(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.edges().count(), 4);
    }

    #[test]
    fn volume_and_longest_chain() {
        let d = diamond();
        assert_eq!(d.volume(), Duration::new(10));
        let chain = d.longest_chain();
        // a → c → d: 1 + 3 + 4 = 8.
        assert_eq!(chain.length, Duration::new(8));
        assert_eq!(chain.vertices, vec![VertexId(0), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn chain_of_empty_dag() {
        let d = DagBuilder::new().build().unwrap();
        let chain = d.longest_chain();
        assert_eq!(chain.length, Duration::ZERO);
        assert!(chain.vertices.is_empty());
        assert_eq!(d.volume(), Duration::ZERO);
    }

    #[test]
    fn single_vertex() {
        let d = Dag::single_vertex(Duration::new(7));
        assert_eq!(d.vertex_count(), 1);
        assert_eq!(d.volume(), Duration::new(7));
        assert_eq!(d.longest_chain().length, Duration::new(7));
        assert_eq!(d.sources(), d.sinks());
    }

    #[test]
    fn sources_and_sinks() {
        let d = diamond();
        assert_eq!(d.sources(), vec![VertexId(0)]);
        assert_eq!(d.sinks(), vec![VertexId(3)]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let d = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0; d.vertex_count()];
            for (i, v) in d.topological_order().iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for (a, b) in d.edges() {
            assert!(pos[a.index()] < pos[b.index()]);
        }
    }

    #[test]
    fn reachability_and_ancestors() {
        let d = diamond();
        assert!(d.is_reachable(VertexId(0), VertexId(3)));
        assert!(!d.is_reachable(VertexId(1), VertexId(2)));
        assert!(d.is_reachable(VertexId(2), VertexId(2)));
        let a = d.ancestors(VertexId(3));
        assert_eq!(a, vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert!(d.ancestors(VertexId(0)).is_empty());
    }

    #[test]
    fn earliest_starts() {
        let d = diamond();
        let est = d.earliest_starts();
        assert_eq!(est[0], Duration::ZERO);
        assert_eq!(est[1], Duration::new(1));
        assert_eq!(est[2], Duration::new(1));
        assert_eq!(est[3], Duration::new(4)); // after a → c
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = DagBuilder::new();
        let v = b.add_vertex(Duration::new(1));
        assert!(matches!(
            b.add_edge(v, v),
            Err(GraphBuildError::SelfLoop { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = DagBuilder::new();
        let x = b.add_vertex(Duration::new(1));
        let y = b.add_vertex(Duration::new(1));
        b.add_edge(x, y).unwrap();
        assert!(matches!(
            b.add_edge(x, y),
            Err(GraphBuildError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn rejects_unknown_vertex() {
        let mut b = DagBuilder::new();
        let x = b.add_vertex(Duration::new(1));
        assert!(matches!(
            b.add_edge(x, VertexId(9)),
            Err(GraphBuildError::UnknownVertex { .. })
        ));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = DagBuilder::new();
        let x = b.add_vertex(Duration::new(1));
        let y = b.add_vertex(Duration::new(1));
        let z = b.add_vertex(Duration::new(1));
        b.add_edge(x, y).unwrap();
        b.add_edge(y, z).unwrap();
        b.add_edge(z, x).unwrap();
        assert!(matches!(b.build(), Err(GraphBuildError::Cycle)));
    }

    #[test]
    fn dot_export_mentions_every_vertex_and_edge() {
        let d = diamond();
        let dot = d.to_dot("g");
        assert!(dot.starts_with("digraph g {"));
        for v in d.vertices() {
            assert!(dot.contains(&format!("label=\"{} ({})\"", v, d.wcet(v))));
        }
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("2 -> 3;"));
    }
}

/// Structural statistics of a DAG, as reported by tooling (`fedsched info`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DagStats {
    /// Vertex count `|V|`.
    pub vertices: usize,
    /// Edge count `|E|`.
    pub edges: usize,
    /// Total work `vol`.
    pub volume: Duration,
    /// Longest chain `len`.
    pub longest_chain: Duration,
    /// The *parallelism* `vol / len` — the average processor count the DAG
    /// can keep busy, and a lower bound on the processors needed to realise
    /// its critical-path makespan.
    pub parallelism: f64,
    /// The largest number of vertices simultaneously runnable in the
    /// infinite-processor (earliest-start) schedule — a cheap upper-bound
    /// witness for how wide the DAG ever gets.
    pub peak_width: usize,
}

impl Dag {
    /// Computes the summary statistics of this DAG.
    ///
    /// `peak_width` is measured on the infinite-processor earliest-start
    /// schedule: the maximum, over time, of concurrently executing
    /// vertices. (The true maximum antichain can be larger; this is the
    /// width that actually materialises when nothing ever waits for a
    /// processor.)
    #[must_use]
    pub fn stats(&self) -> DagStats {
        let volume = self.volume();
        let longest_chain = self.longest_chain().length;
        let parallelism = if longest_chain.is_zero() {
            0.0
        } else {
            volume.ticks() as f64 / longest_chain.ticks() as f64
        };
        // Sweep the earliest-start schedule's start/finish events.
        let est = self.earliest_starts();
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(2 * self.vertex_count());
        for v in self.vertices() {
            let s = est[v.index()].ticks();
            events.push((s, 1));
            events.push((s + self.wcet(v).ticks(), -1));
        }
        // Ends sort before starts at equal instants (half-open intervals).
        events.sort_by_key(|&(t, d)| (t, d));
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        DagStats {
            vertices: self.vertex_count(),
            edges: self.edge_count(),
            volume,
            longest_chain,
            parallelism,
            peak_width: usize::try_from(peak).unwrap_or(0),
        }
    }

    /// The transitive *closure* as a boolean reachability matrix:
    /// `matrix[a][b]` is `true` iff `b` is reachable from `a` by a
    /// non-empty path.
    ///
    /// `O(|V| · |E|)` by propagating successor sets in reverse topological
    /// order.
    #[must_use]
    pub fn transitive_closure(&self) -> Vec<Vec<bool>> {
        let n = self.vertex_count();
        let mut reach = vec![vec![false; n]; n];
        for &v in self.topo.iter().rev() {
            // A row borrowed twice would alienate the borrow checker; build
            // the row first, then store it.
            let mut row = vec![false; n];
            for &s in self.successors(v) {
                row[s.index()] = true;
                for b in 0..n {
                    if reach[s.index()][b] {
                        row[b] = true;
                    }
                }
            }
            reach[v.index()] = row;
        }
        reach
    }

    /// The transitive *reduction*: the unique minimal DAG with the same
    /// reachability relation (same vertices and WCETs, redundant edges
    /// removed).
    ///
    /// An edge `(a, b)` is redundant iff some other successor of `a`
    /// reaches `b`. Precedence-constrained scheduling semantics are
    /// invariant under this transformation, which makes it a useful
    /// normalisation for generated workloads (and a good property-test
    /// target: schedules of a DAG and its reduction coincide).
    #[must_use]
    pub fn transitive_reduction(&self) -> Dag {
        let closure = self.transitive_closure();
        let mut b = DagBuilder::with_capacity(self.vertex_count());
        let ids = b.add_vertices(self.wcets().iter().copied());
        for (a, c) in self.edges() {
            let redundant = self
                .successors(a)
                .iter()
                .any(|&mid| mid != c && closure[mid.index()][c.index()]);
            if !redundant {
                b.add_edge(ids[a.index()], ids[c.index()])
                    .expect("subset of a valid edge set");
            }
        }
        b.build().expect("subgraph of a DAG is a DAG")
    }
}

#[cfg(test)]
mod structure_tests {
    use super::*;

    /// a → b → c plus the redundant shortcut a → c; a → d in parallel.
    fn shortcut() -> Dag {
        let mut b = DagBuilder::new();
        let v = b.add_vertices([1, 2, 3, 4].map(Duration::new));
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[1], v[2]).unwrap();
        b.add_edge(v[0], v[2]).unwrap(); // redundant
        b.add_edge(v[0], v[3]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn closure_matches_reachability() {
        let d = shortcut();
        let c = d.transitive_closure();
        for a in d.vertices() {
            for b in d.vertices() {
                let expected = a != b && d.is_reachable(a, b);
                assert_eq!(c[a.index()][b.index()], expected, "{a} -> {b}");
            }
        }
    }

    #[test]
    fn reduction_removes_exactly_the_shortcut() {
        let d = shortcut();
        let r = d.transitive_reduction();
        assert_eq!(r.edge_count(), 3);
        assert_eq!(r.vertex_count(), 4);
        // Reachability is preserved.
        assert_eq!(d.transitive_closure(), r.transitive_closure());
        // Scheduling quantities are untouched.
        assert_eq!(d.volume(), r.volume());
        assert_eq!(d.longest_chain().length, r.longest_chain().length);
    }

    #[test]
    fn reduction_of_reduced_graph_is_identity() {
        let r = shortcut().transitive_reduction();
        let rr = r.transitive_reduction();
        assert_eq!(r.edge_count(), rr.edge_count());
        assert_eq!(r.transitive_closure(), rr.transitive_closure());
    }

    #[test]
    fn stats_of_shortcut_graph() {
        let d = shortcut();
        let s = d.stats();
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.volume, Duration::new(10));
        assert_eq!(s.longest_chain, Duration::new(6)); // a→b→c
        assert!((s.parallelism - 10.0 / 6.0).abs() < 1e-12);
        // EST: a[0,1), b[1,3), c[3,6), d[1,5) ⇒ peak 2 (b ∥ d).
        assert_eq!(s.peak_width, 2);
    }

    #[test]
    fn stats_edge_cases() {
        let empty = DagBuilder::new().build().unwrap();
        let s = empty.stats();
        assert_eq!(s.peak_width, 0);
        assert_eq!(s.parallelism, 0.0);
        let single = Dag::single_vertex(Duration::new(5));
        let s = single.stats();
        assert_eq!(s.peak_width, 1);
        assert_eq!(s.parallelism, 1.0);
        // Fully parallel: width = n.
        let mut b = DagBuilder::new();
        b.add_vertices([2, 2, 2].map(Duration::new));
        let par = b.build().unwrap();
        assert_eq!(par.stats().peak_width, 3);
        assert_eq!(par.stats().parallelism, 3.0);
    }
}
