//! The worked examples from the paper, as ready-made constructors.

use crate::graph::DagBuilder;
use crate::system::TaskSystem;
use crate::task::DagTask;
use crate::time::Duration;

/// The sporadic DAG task `τ_1` of the paper's **Figure 1 / Example 1**.
///
/// Five vertices, five precedence edges, `len_1 = 6`, `vol_1 = 9`,
/// `D_1 = 16`, `T_1 = 20`, hence `δ_1 = 9/16` and `u_1 = 9/20` — a
/// low-density task.
///
/// The figure itself is only partially recoverable from the archived text
/// (vertex WCETs are drawn, not all listed); this constructor uses the
/// topology below, which matches every quantity the paper states:
///
/// ```text
///        ┌─> v1(3) ─┐
/// v0(1) ─┤          ├─> v3(2)
///        └─> v2(2) ─┴─> v4(1)
/// ```
///
/// (Longest chain: `v0 → v1 → v3`, length `1 + 3 + 2 = 6`.)
///
/// # Examples
///
/// ```
/// use fedsched_dag::examples::paper_figure1;
/// use fedsched_dag::rational::Rational;
///
/// let tau1 = paper_figure1();
/// assert_eq!(tau1.density(), Rational::new(9, 16));
/// assert!(tau1.is_low_density());
/// ```
#[must_use]
pub fn paper_figure1() -> DagTask {
    let mut b = DagBuilder::new();
    let v = b.add_vertices([1, 3, 2, 2, 1].map(Duration::new));
    b.add_edge(v[0], v[1]).expect("fresh edge");
    b.add_edge(v[0], v[2]).expect("fresh edge");
    b.add_edge(v[1], v[3]).expect("fresh edge");
    b.add_edge(v[2], v[3]).expect("fresh edge");
    b.add_edge(v[2], v[4]).expect("fresh edge");
    DagTask::new(
        b.build().expect("acyclic"),
        Duration::new(16),
        Duration::new(20),
    )
    .expect("valid parameters")
}

/// The task system of the paper's **Example 2**, which shows that capacity
/// augmentation bounds are meaningless for constrained deadlines.
///
/// `n` tasks, each a single vertex with WCET 1, `D_i = 1`, `T_i = n`.
/// `U_sum = n · (1/n) = 1` and `len_i = 1 ≤ D_i`, yet if all tasks release
/// simultaneously, `n` units of work must finish within one time unit — a
/// processor of speed `n` is required. As `n → ∞` the necessary speedup is
/// unbounded, so no algorithm has a finite capacity augmentation bound for
/// constrained-deadline systems.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// use fedsched_dag::examples::paper_example2;
/// use fedsched_dag::rational::Rational;
///
/// let sys = paper_example2(8);
/// assert_eq!(sys.len(), 8);
/// assert_eq!(sys.total_utilization(), Rational::ONE);
/// assert!(sys.all_chains_feasible());
/// // ... and yet total density — the work that can be demanded in a unit
/// // window — is n:
/// assert_eq!(sys.total_density(), Rational::from_integer(8));
/// ```
#[must_use]
pub fn paper_example2(n: u32) -> TaskSystem {
    assert!(n > 0, "Example 2 needs at least one task");
    (0..n)
        .map(|_| {
            DagTask::sequential(
                Duration::new(1),
                Duration::new(1),
                Duration::new(u64::from(n)),
            )
            .expect("valid parameters")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rational;
    use crate::task::DeadlineClass;

    #[test]
    fn figure1_matches_every_stated_quantity() {
        let t = paper_figure1();
        assert_eq!(t.dag().vertex_count(), 5);
        assert_eq!(t.dag().edge_count(), 5);
        assert_eq!(t.volume(), Duration::new(9));
        assert_eq!(t.longest_chain_length(), Duration::new(6));
        assert_eq!(t.deadline(), Duration::new(16));
        assert_eq!(t.period(), Duration::new(20));
        assert_eq!(t.density(), Rational::new(9, 16));
        assert_eq!(t.utilization(), Rational::new(9, 20));
        assert!(t.is_low_density());
        assert_eq!(t.deadline_class(), DeadlineClass::Constrained);
    }

    #[test]
    fn example2_utilization_is_one_for_every_n() {
        for n in [1u32, 2, 3, 10, 100] {
            let sys = paper_example2(n);
            assert_eq!(sys.total_utilization(), Rational::ONE, "n = {n}");
            assert_eq!(sys.total_density(), Rational::from_integer(i128::from(n)));
            assert!(sys.all_chains_feasible());
        }
    }

    #[test]
    fn example2_is_constrained_for_n_over_one() {
        assert_eq!(paper_example2(1).deadline_class(), DeadlineClass::Implicit);
        assert_eq!(
            paper_example2(4).deadline_class(),
            DeadlineClass::Constrained
        );
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn example2_rejects_zero() {
        let _ = paper_example2(0);
    }
}
