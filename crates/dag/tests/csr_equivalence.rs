//! Equivalence of the CSR arena [`Dag`] with a naive nested-adjacency
//! model of the pre-refactor builder.
//!
//! The CSR layout changed how adjacency is *stored*, not what it *means*:
//! per-vertex successor and predecessor lists must keep their
//! edge-insertion order, Kahn's queue must visit the same vertices in the
//! same order, and the longest-chain DP must see the same neighbours.
//! These properties rebuild the old representation directly from the edge
//! script and compare every observable, plus the frozen serde wire shape.

use fedsched_dag::graph::{Dag, DagBuilder, VertexId};
use fedsched_dag::time::Duration;
use proptest::prelude::*;
use serde::{Serialize, Value};
use std::collections::VecDeque;

/// The retired representation, rebuilt verbatim from the same edge script:
/// nested adjacency vectors in edge-insertion order.
struct NaiveDag {
    wcets: Vec<Duration>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
}

impl NaiveDag {
    fn new(wcets: &[Duration], edges: &[(usize, usize)]) -> NaiveDag {
        let n = wcets.len();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for &(from, to) in edges {
            succ[from].push(to);
            pred[to].push(from);
        }
        NaiveDag {
            wcets: wcets.to_vec(),
            succ,
            pred,
        }
    }

    /// Kahn's algorithm with a FIFO queue, exactly as the old builder ran
    /// it over its nested adjacency.
    fn topological_order(&self) -> Vec<usize> {
        let n = self.wcets.len();
        let mut indegree: Vec<usize> = (0..n).map(|v| self.pred[v].len()).collect();
        let mut queue: VecDeque<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &s in &self.succ[v] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        order
    }

    /// Longest-path DP over the topological order; returns `len(G)`.
    fn longest_chain_length(&self) -> u64 {
        let n = self.wcets.len();
        let mut dist = vec![0u64; n];
        let mut best = 0;
        for v in self.topological_order() {
            let tail: u64 = self.pred[v].iter().map(|&p| dist[p]).max().unwrap_or(0);
            dist[v] = tail + self.wcets[v].ticks();
            best = best.max(dist[v]);
        }
        best
    }
}

/// A WCET vector plus a forward-only edge script over it: the triangular
/// adjacency-flag encoding used by the dag property suite, kept as the
/// explicit `(from, to)` list so the naive model replays it verbatim.
fn arb_script() -> impl Strategy<Value = (Vec<Duration>, Vec<(usize, usize)>)> {
    (2usize..24).prop_flat_map(|n| {
        let wcets = prop::collection::vec(1u64..=20, n)
            .prop_map(|ws| ws.into_iter().map(Duration::new).collect::<Vec<_>>());
        let flags = prop::collection::vec(any::<bool>(), n * (n - 1) / 2);
        (wcets, flags).prop_map(move |(wcets, flags)| {
            let mut edges = Vec::new();
            let mut k = 0;
            for from in 0..n {
                for to in (from + 1)..n {
                    if flags[k] {
                        edges.push((from, to));
                    }
                    k += 1;
                }
            }
            (wcets, edges)
        })
    })
}

fn build_csr(wcets: &[Duration], edges: &[(usize, usize)]) -> Dag {
    let mut builder = DagBuilder::new();
    let vs = builder.add_vertices(wcets.iter().copied());
    for &(from, to) in edges {
        builder.add_edge(vs[from], vs[to]).unwrap();
    }
    builder.build().unwrap()
}

fn indices(vs: &[VertexId]) -> Vec<usize> {
    vs.iter().map(|v| v.index()).collect()
}

proptest! {
    #[test]
    fn csr_matches_naive_adjacency_and_degrees(
        (wcets, edges) in arb_script()
    ) {
        let dag = build_csr(&wcets, &edges);
        let naive = NaiveDag::new(&wcets, &edges);

        prop_assert_eq!(dag.vertex_count(), wcets.len());
        prop_assert_eq!(dag.edge_count(), edges.len());
        for v in dag.vertices() {
            let i = v.index();
            prop_assert_eq!(
                indices(dag.successors(v)),
                naive.succ[i].clone(),
                "successor slice of v{} must keep edge-insertion order", i
            );
            prop_assert_eq!(
                indices(dag.predecessors(v)),
                naive.pred[i].clone(),
                "predecessor slice of v{} must keep edge-insertion order", i
            );
            prop_assert_eq!(dag.out_degree(v), naive.succ[i].len());
            prop_assert_eq!(dag.in_degree(v), naive.pred[i].len());
        }
        let listed: Vec<(usize, usize)> =
            dag.edges().map(|(f, t)| (f.index(), t.index())).collect();
        let mut expected = edges.clone();
        expected.sort_by_key(|&(f, _)| f); // edges() groups by source vertex
        prop_assert_eq!(listed, expected);
    }

    #[test]
    fn csr_matches_naive_topo_and_critical_path(
        (wcets, edges) in arb_script()
    ) {
        let dag = build_csr(&wcets, &edges);
        let naive = NaiveDag::new(&wcets, &edges);

        prop_assert_eq!(
            indices(dag.topological_order()),
            naive.topological_order(),
            "Kahn FIFO order must be unchanged by the CSR layout"
        );

        let chain = dag.longest_chain();
        prop_assert_eq!(chain.length.ticks(), naive.longest_chain_length());
        // The witness must be a genuine chain realising that length.
        let total: u64 = chain.vertices.iter().map(|&v| dag.wcet(v).ticks()).sum();
        prop_assert_eq!(total, chain.length.ticks());
        for pair in chain.vertices.windows(2) {
            prop_assert!(
                dag.successors(pair[0]).contains(&pair[1]),
                "chain witness must follow edges"
            );
        }
    }

    #[test]
    fn serde_roundtrip_preserves_csr_and_wire_shape(
        (wcets, edges) in arb_script()
    ) {
        let dag = build_csr(&wcets, &edges);
        let json = serde_json::to_string(&dag).unwrap();
        let back: Dag = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &dag, "serde roundtrip must be lossless");

        // The wire format is frozen: the same five fields, in the same
        // order, with nested per-vertex adjacency lists.
        let value = dag.to_value();
        let Value::Map(fields) = value else {
            return Err(TestCaseError::Fail("Dag must serialise as a map".into()));
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        prop_assert_eq!(
            keys,
            vec!["wcets", "successors", "predecessors", "edge_count", "topo"]
        );
        let naive = NaiveDag::new(&wcets, &edges);
        let Value::Seq(succ_lists) = &fields[1].1 else {
            return Err(TestCaseError::Fail("successors must be a list of lists".into()));
        };
        for (v, list) in succ_lists.iter().enumerate() {
            let Value::Seq(items) = list else {
                return Err(TestCaseError::Fail("per-vertex successors must be a list".into()));
            };
            let mut ids = Vec::with_capacity(items.len());
            for item in items {
                let Value::UInt(id) = item else {
                    return Err(TestCaseError::Fail("vertex ids serialise as integers".into()));
                };
                ids.push(*id as usize);
            }
            prop_assert_eq!(&ids, &naive.succ[v]);
        }
    }
}
