//! Property-based tests for the model substrate.

use fedsched_dag::graph::{Dag, DagBuilder, VertexId};
use fedsched_dag::rational::Rational;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use proptest::prelude::*;

/// Strategy: a random DAG with `n` vertices whose edges always go from a
/// lower to a higher index (hence acyclic by construction), with random
/// positive WCETs.
fn arb_dag(max_vertices: usize) -> impl Strategy<Value = Dag> {
    (1..=max_vertices)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(1u64..=20, n),
                prop::collection::vec(any::<bool>(), n * (n - 1) / 2),
            )
        })
        .prop_map(|(wcets, edge_flags)| {
            let mut b = DagBuilder::new();
            let vs = b.add_vertices(wcets.into_iter().map(Duration::new));
            let mut k = 0;
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    if edge_flags[k] {
                        b.add_edge(vs[i], vs[j]).expect("forward edges are fresh");
                    }
                    k += 1;
                }
            }
            b.build().expect("forward-only edges cannot cycle")
        })
}

proptest! {
    /// The longest chain never exceeds the volume, and both are positive for
    /// non-empty DAGs with positive WCETs.
    #[test]
    fn chain_bounded_by_volume(dag in arb_dag(12)) {
        let chain = dag.longest_chain();
        prop_assert!(chain.length <= dag.volume());
        prop_assert!(chain.length > Duration::ZERO);
    }

    /// The witnessing chain is an actual path: consecutive vertices are
    /// connected by edges, and its WCETs sum to the reported length.
    #[test]
    fn chain_witness_is_a_real_path(dag in arb_dag(12)) {
        let chain = dag.longest_chain();
        let sum: Duration = chain.vertices.iter().map(|&v| dag.wcet(v)).sum();
        prop_assert_eq!(sum, chain.length);
        for w in chain.vertices.windows(2) {
            prop_assert!(dag.successors(w[0]).contains(&w[1]));
        }
    }

    /// No single-vertex chain beats the DP answer: every vertex's
    /// earliest-start + wcet is at most the longest chain length.
    #[test]
    fn earliest_starts_consistent_with_chain(dag in arb_dag(12)) {
        let est = dag.earliest_starts();
        let len = dag.longest_chain().length;
        for v in dag.vertices() {
            prop_assert!(est[v.index()] + dag.wcet(v) <= len);
        }
        // ... and the bound is tight for at least one vertex.
        let max = dag
            .vertices()
            .map(|v| est[v.index()] + dag.wcet(v))
            .max()
            .unwrap();
        prop_assert_eq!(max, len);
    }

    /// The topological order is a permutation respecting all edges.
    #[test]
    fn topological_order_is_valid(dag in arb_dag(12)) {
        let order = dag.topological_order();
        prop_assert_eq!(order.len(), dag.vertex_count());
        let mut pos = vec![usize::MAX; dag.vertex_count()];
        for (i, v) in order.iter().enumerate() {
            prop_assert_eq!(pos[v.index()], usize::MAX, "vertex repeated");
            pos[v.index()] = i;
        }
        for (a, b) in dag.edges() {
            prop_assert!(pos[a.index()] < pos[b.index()]);
        }
    }

    /// Reachability agrees with edge membership and is transitive along
    /// sampled triples.
    #[test]
    fn reachability_contains_edges(dag in arb_dag(10)) {
        for (a, b) in dag.edges() {
            prop_assert!(dag.is_reachable(a, b));
        }
        // Ancestors and reachability agree.
        for v in dag.vertices() {
            for a in dag.ancestors(v) {
                prop_assert!(dag.is_reachable(a, v));
            }
        }
    }

    /// Density ≥ utilization for constrained deadlines, with equality iff
    /// D = T.
    #[test]
    fn density_dominates_utilization(
        dag in arb_dag(8),
        d in 1u64..=100,
        extra in 0u64..=50,
    ) {
        let t = DagTask::new(dag, Duration::new(d), Duration::new(d + extra)).unwrap();
        prop_assert!(t.density() >= t.utilization());
        if extra == 0 {
            prop_assert_eq!(t.density(), t.utilization());
        }
    }

    /// Serialization round-trips through JSON.
    #[test]
    fn task_serde_roundtrip(dag in arb_dag(8), d in 1u64..=100, t in 1u64..=100) {
        let task = DagTask::new(dag, Duration::new(d), Duration::new(t)).unwrap();
        let json = serde_json::to_string(&task).unwrap();
        let back: DagTask = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(task, back);
    }
}

proptest! {
    /// Rational arithmetic: field axioms on random small fractions.
    #[test]
    fn rational_field_axioms(
        a in -50i128..=50, b in 1i128..=50,
        c in -50i128..=50, d in 1i128..=50,
        e in -50i128..=50, f in 1i128..=50,
    ) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        let z = Rational::new(e, f);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y) + z, x + (y + z));
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!((x * y) * z, x * (y * z));
        prop_assert_eq!(x * (y + z), x * y + x * z);
        prop_assert_eq!(x + Rational::ZERO, x);
        prop_assert_eq!(x * Rational::ONE, x);
        prop_assert_eq!(x - x, Rational::ZERO);
        if !y.is_zero() {
            prop_assert_eq!((x / y) * y, x);
        }
    }

    /// Ordering is total and consistent with f64 on small fractions.
    #[test]
    fn rational_ordering_matches_f64(
        a in -50i128..=50, b in 1i128..=50,
        c in -50i128..=50, d in 1i128..=50,
    ) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        let cmp = x.cmp(&y);
        let fcmp = x.to_f64().partial_cmp(&y.to_f64()).unwrap();
        prop_assert_eq!(cmp, fcmp);
    }

    /// ceil/floor bracket the value.
    #[test]
    fn rational_ceil_floor_bracket(a in -500i128..=500, b in 1i128..=50) {
        let x = Rational::new(a, b);
        prop_assert!(Rational::from_integer(x.floor()) <= x);
        prop_assert!(x <= Rational::from_integer(x.ceil()));
        prop_assert!(x.ceil() - x.floor() <= 1);
    }
}

#[test]
fn vertex_id_index_roundtrip() {
    for i in [0usize, 1, 7, 1000] {
        assert_eq!(VertexId::from_index(i).index(), i);
    }
}

proptest! {
    /// Structural statistics are internally consistent: average parallelism
    /// (vol/len) never exceeds the peak earliest-start width, which never
    /// exceeds the vertex count; transitive reduction preserves all of them.
    #[test]
    fn stats_and_reduction_consistency(dag in arb_dag(12)) {
        let s = dag.stats();
        prop_assert!(s.peak_width >= 1);
        prop_assert!(s.peak_width <= s.vertices);
        prop_assert!(s.parallelism <= s.peak_width as f64 + 1e-9);
        prop_assert!(s.parallelism >= 1.0 - 1e-9);

        let reduced = dag.transitive_reduction();
        let rs = reduced.stats();
        prop_assert_eq!(rs.vertices, s.vertices);
        prop_assert!(rs.edges <= s.edges);
        prop_assert_eq!(rs.volume, s.volume);
        prop_assert_eq!(rs.longest_chain, s.longest_chain);
        // Reachability is exactly preserved.
        prop_assert_eq!(dag.transitive_closure(), reduced.transitive_closure());
    }

    /// The closure matrix is transitively closed and acyclic (no vertex
    /// reaches itself).
    #[test]
    fn closure_is_transitive_and_irreflexive(dag in arb_dag(10)) {
        let c = dag.transitive_closure();
        let n = dag.vertex_count();
        for a in 0..n {
            prop_assert!(!c[a][a], "cycle through v{a}");
            for b in 0..n {
                if !c[a][b] { continue; }
                for (z, &via) in c[b].iter().enumerate() {
                    if via {
                        prop_assert!(c[a][z], "transitivity broken: {a}->{b}->{z}");
                    }
                }
            }
        }
    }
}
