//! Vendored minimal serde shim.
//!
//! The build environment has no network access and no crates.io mirror, so
//! this workspace vendors the handful of external crates it needs as small
//! API-compatible shims. This one replaces `serde` with a deliberately
//! simple design: instead of serde's visitor-based zero-copy data model,
//! everything serializes into (and deserializes from) a self-describing
//! [`Value`] tree. `serde_json` (also vendored) renders that tree as JSON.
//!
//! The public surface mirrors what the workspace uses: the [`Serialize`] and
//! [`Deserialize`] traits, and — behind the `derive` feature — the
//! `#[derive(Serialize, Deserialize)]` macros with support for the
//! `#[serde(transparent)]` attribute (single-field tuple structs are always
//! transparent, matching serde's newtype-struct JSON encoding).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value: the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (JSON number without sign, fraction or exponent).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this is one.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The items of an array, if this is one.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value under `key`, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// The value as an unsigned integer, if losslessly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if losslessly representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    /// The value as a float (integers convert).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// A free-form error.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y".
    #[must_use]
    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// A required object key was absent.
    #[must_use]
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError(format!("missing field `{field}` in {ty}"))
    }

    /// An enum tag matched no variant.
    #[must_use]
    pub fn unknown_variant(tag: &str, ty: &str) -> DeError {
        DeError(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// The serialized form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the value does not fit.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape or range is wrong.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Support helper used by the derive macros: field lookup with a
/// missing-field error.
///
/// # Errors
///
/// Returns [`DeError::missing_field`] when `key` is absent.
pub fn __map_field<'a>(
    map: &'a [(String, Value)],
    key: &str,
    ty: &str,
) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(key, ty))
}

/// Support helper used by the derive macros: optional field lookup for
/// `#[serde(default)]` fields, where an absent key is not an error.
#[must_use]
pub fn __map_field_opt<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ── primitive impls ─────────────────────────────────────────────────────

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::expected("unsigned integer", stringify!($t))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", "usize"))?;
        usize::try_from(n).map_err(|_| DeError::expected("in-range integer", "usize"))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::expected("integer", stringify!($t))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        // The JSON data model here is 64-bit; wider values do not occur in
        // this workspace's serialized types (Rational components stay in
        // u64 tick range). Fail loudly rather than silently losing bits.
        if *self < 0 {
            let n = i64::try_from(*self).expect("i128 value exceeds the 64-bit JSON range");
            Value::Int(n)
        } else {
            let n = u64::try_from(*self).expect("i128 value exceeds the 64-bit JSON range");
            Value::UInt(n)
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::UInt(n) => Ok(i128::from(n)),
            Value::Int(n) => Ok(i128::from(n)),
            _ => Err(DeError::expected("integer", "i128")),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        let n = u64::try_from(*self).expect("u128 value exceeds the 64-bit JSON range");
        Value::UInt(n)
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", "u128"))?;
        Ok(u128::from(n))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = i64::from_value(v)?;
        isize::try_from(n).map_err(|_| DeError::expected("in-range integer", "isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

// ── containers ──────────────────────────────────────────────────────────

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "tuple"))?;
        if s.len() != 2 {
            return Err(DeError::expected("array of length 2", "tuple"));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "tuple"))?;
        if s.len() != 3 {
            return Err(DeError::expected("array of length 3", "tuple"));
        }
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Map(vec![("k".into(), Value::UInt(5))]);
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("absent"), None);
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::UInt(2).as_f64(), Some(2.0));
    }
}
