//! Vendored minimal `rand` shim.
//!
//! The build environment has no crates.io access, so this workspace ships
//! its own small PRNG with the subset of the rand 0.8 API it uses:
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! [`Rng::gen`] for `f64`/`f32`/`bool`/integers, and
//! [`SeedableRng::seed_from_u64`] for the deterministic [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong for simulation workloads and fully deterministic per seed. Note
//! that streams differ from the real crate's `StdRng` (ChaCha12); seeds
//! produce different but equally valid workloads.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the API subset of rand 0.8's `Rng`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in the given range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A value sampled from the standard distribution of `T`
    /// (uniform bits for integers, `[0, 1)` for floats, fair coin for bool).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Element types [`Rng::gen_range`] can sample uniformly.
///
/// The single generic [`SampleRange`] impl below ties a range's element
/// type to the sampled type during inference (as in the real crate), so
/// `rng.gen_range(0.5..1.0)` infers `f64` from downstream float arithmetic.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                // Full-width inclusive range of a 64-bit type: span is 2^64.
                let v = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_int128 {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                // Two's-complement distance is exact for both signs.
                let span = hi.wrapping_sub(lo) as u128;
                let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                let v = if inclusive {
                    if span == u128::MAX { wide } else { wide % (span + 1) }
                } else {
                    wide % span
                };
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_uniform_int128!(u128, i128);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                lo: $t,
                hi: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                // The closed upper end has measure zero; one transform
                // serves both `..` and `..=`.
                let u = rng.next_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// The standard distribution used by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        rng.next_f64() as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's deterministic standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = r.gen_range(0..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn unit_interval_statistics() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits} hits for p=0.3");
    }

    #[test]
    fn works_through_mut_references() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = take(&mut r);
        let mut borrowed: &mut StdRng = &mut r;
        let _ = take(&mut borrowed);
    }
}
