//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The shim's data model is a self-describing [`serde::Value`] tree, so the
//! derives only need to generate `to_value` / `from_value` implementations.
//! Supported shapes (everything this workspace uses):
//!
//! * structs with named fields → JSON objects;
//! * tuple structs with one field → the inner value (newtype/transparent);
//! * tuple structs with several fields → JSON arrays;
//! * unit structs → `null`;
//! * enums: unit variants → `"Variant"`, newtype variants →
//!   `{"Variant": value}`, tuple variants → `{"Variant": [..]}`, struct
//!   variants → `{"Variant": {..}}` (serde's externally-tagged default).
//!
//! Two field attributes are honored on named fields (of structs and of
//! enum struct variants), matching real serde's semantics:
//!
//! * `#[serde(default)]` — an absent key deserializes to
//!   `Default::default()` instead of erroring;
//! * `#[serde(skip_serializing_if = "path")]` — the key is omitted from
//!   the serialized map when `path(&field)` is true (the path is resolved
//!   in the type's own module, like real serde).
//!
//! All other `#[serde(...)]` arguments are ignored. Generic types are not
//! supported; the macro panics with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim version).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (shim version).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ── input model ─────────────────────────────────────────────────────────

struct Parsed {
    name: String,
    data: Data,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]`: absent key → `Default::default()`.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: omit when `path(&f)`.
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ── parsing ─────────────────────────────────────────────────────────────

fn parse(input: TokenStream) -> Parsed {
    let mut it = input.into_iter().peekable();
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute (doc comment, #[serde(..)], ...): skip its group.
                let _ = it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip optional `pub(..)` restriction group.
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&mut it);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return parse_enum(&mut it);
            }
            Some(_) => {}
            None => panic!("serde shim derive: found neither `struct` nor `enum`"),
        }
    }
}

fn next_ident(it: &mut impl Iterator<Item = TokenTree>) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

fn reject_generics(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, name: &str) {
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
}

fn parse_struct(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Parsed {
    let name = next_ident(it);
    reject_generics(it, &name);
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Parsed {
            name,
            data: Data::NamedStruct(parse_named_fields(g.stream())),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Parsed {
            name,
            data: Data::TupleStruct(count_tuple_fields(g.stream())),
        },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Parsed {
            name,
            data: Data::UnitStruct,
        },
        other => panic!("serde shim derive: unexpected struct body {other:?}"),
    }
}

/// The `default` / `skip_serializing_if` arguments of one `#[serde(..)]`
/// attribute group (a bracketed `serde ( .. )` stream), folded into `field`.
fn parse_serde_args(attr: TokenStream, field: &mut Field) {
    let mut it = attr.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // some other attribute (doc comment, allow, ...)
    }
    let Some(TokenTree::Group(args)) = it.next() else {
        return;
    };
    let mut ait = args.stream().into_iter().peekable();
    while let Some(tok) = ait.next() {
        let TokenTree::Ident(id) = tok else { continue };
        match id.to_string().as_str() {
            "default" => field.default = true,
            "skip_serializing_if" => {
                // `= "path"`: take the literal and strip its quotes.
                if let Some(TokenTree::Punct(p)) = ait.next() {
                    if p.as_char() == '=' {
                        if let Some(TokenTree::Literal(lit)) = ait.next() {
                            let raw = lit.to_string();
                            field.skip_if = Some(raw.trim_matches('"').to_string());
                        }
                    }
                }
            }
            _ => {} // unsupported serde argument: ignored, like before
        }
    }
}

/// Fields of a `{ .. }` field list with their serde attributes, skipping
/// visibility and type tokens (tracking `<`/`>` depth so generic commas
/// don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    'outer: loop {
        // Collect attributes and skip visibility before the field name.
        let mut field = Field {
            name: String::new(),
            default: false,
            skip_if: None,
        };
        let name = loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = it.next() {
                        parse_serde_args(g.stream(), &mut field);
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = it.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde shim derive: unexpected field token {other:?}"),
                None => break 'outer,
            }
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        field.name = name;
        fields.push(field);
        // Consume the type up to a top-level comma.
        let mut angle_depth: i32 = 0;
        loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break 'outer,
            }
        }
    }
    fields
}

/// Number of fields in a `( .. )` field list (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth: i32 = 0;
    for tok in stream {
        saw_tokens = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => fields += 1,
            _ => {}
        }
    }
    if saw_tokens {
        fields + 1
    } else {
        0
    }
}

fn parse_enum(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Parsed {
    let name = next_ident(it);
    reject_generics(it, &name);
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde shim derive: expected enum body, got {other:?}"),
    };
    let mut variants = Vec::new();
    let mut vit = body.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        let vname = loop {
            match vit.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = vit.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(other) => panic!("serde shim derive: unexpected variant token {other:?}"),
                None => {
                    return Parsed {
                        name,
                        data: Data::Enum(variants),
                    }
                }
            }
        };
        let kind = match vit.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                let _ = vit.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                let _ = vit.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name: vname, kind });
        // Skip to the next comma (covers discriminants, which we reject by
        // simply never seeing them in this workspace).
        loop {
            match vit.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => {
                    return Parsed {
                        name,
                        data: Data::Enum(variants),
                    }
                }
            }
        }
    }
}

// ── code generation ─────────────────────────────────────────────────────

/// The map-building statements for a named-field list. `accessor` turns a
/// field name into the expression borrowing it (`&self.f` for structs, the
/// match binding `f` for enum struct variants — already a reference).
fn gen_field_map(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::from(
        "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        let fname = &f.name;
        let expr = accessor(fname);
        let push = format!(
            "__m.push((::std::string::String::from({fname:?}), \
             ::serde::Serialize::to_value({expr})));"
        );
        match &f.skip_if {
            Some(path) => {
                out.push_str(&format!("if !{path}({expr}) {{ {push} }}\n"));
            }
            None => {
                out.push_str(&push);
                out.push('\n');
            }
        }
    }
    out.push_str("::serde::Value::Map(__m)");
    out
}

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.data {
        Data::NamedStruct(fields) => {
            format!("{{ {} }}", gen_field_map(fields, |f| format!("&self.{f}")))
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                              ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                  ::serde::Value::Seq(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let payload = gen_field_map(fields, |f| f.to_string());
                            let payload_let = format!("let __payload = {{ {payload} }};");
                            format!(
                                "{name}::{vn} {{ {} }} => {{\n{payload_let}\n\
                                 ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), __payload)])\n}}",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// The init expression rebuilding one named field from `__map`.
fn gen_field_init(f: &Field, ty: &str) -> String {
    let fname = &f.name;
    if f.default {
        format!(
            "{fname}: match ::serde::__map_field_opt(__map, {fname:?}) {{\n\
             ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
             ::std::option::Option::None => ::std::default::Default::default(),\n\
             }}"
        )
    } else {
        format!(
            "{fname}: ::serde::Deserialize::from_value(\
             ::serde::__map_field(__map, {fname:?}, {ty:?})?)?"
        )
    }
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| gen_field_init(f, name)).collect();
            format!(
                "let __map = __v.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __v.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", {name:?}))?;\n\
                 if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"array of length {n}\", {name:?})); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn})")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __seq = __payload.as_seq().ok_or_else(|| \
                                 ::serde::DeError::expected(\"array\", {name:?}))?;\n\
                                 if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"array of length {n}\", {name:?})); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| gen_field_init(f, name)).collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __map = __payload.as_map().ok_or_else(|| \
                                 ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                     {unit}\n\
                     __other => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(__other, {name:?})),\n\
                 }},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                     let (__tag, __payload) = &__m[0];\n\
                     match __tag.as_str() {{\n\
                         {tagged}\n\
                         __other => ::std::result::Result::Err(\
                         ::serde::DeError::unknown_variant(__other, {name:?})),\n\
                     }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"string or single-key object\", {name:?})),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    unit_arms.join(",\n") + ","
                },
                tagged = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    tagged_arms.join(",\n") + ","
                },
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
