//! Minimal Linux readiness primitives for an epoll-based event loop.
//!
//! The crate wraps exactly the four kernel facilities a single-threaded
//! reactor needs — `epoll_create1`/`epoll_ctl`/`epoll_wait`, `eventfd`,
//! and the `fcntl` nonblocking toggle — behind a safe, allocation-light
//! API. No `libc` crate is vendored in this workspace, so the syscalls
//! are declared directly against the C runtime (the symbols always link
//! on Linux); all `unsafe` lives here so dependent crates can keep
//! `#![forbid(unsafe_code)]`.
//!
//! Readiness is **level-triggered** (the epoll default): a fd stays
//! ready until its condition is consumed, so a loop that processes only
//! part of a buffer is re-woken instead of wedged — the forgiving mode
//! for a hand-rolled reactor.
//!
//! Linux-only by construction, like the crash suite of the consuming
//! service: the workspace's CI and deployment targets are Linux, and the
//! thread-per-connection fallback remains for everything else.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

// The kernel's epoll event record. On x86-64 the kernel ABI packs the
// struct (4-byte aligned u64); every other Linux architecture uses the
// natural C layout.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    #[link_name = "read"]
    fn sys_read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    #[link_name = "write"]
    fn sys_write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

// Linux ABI constants (identical across the architectures Rust targets
// on Linux; only historical ports like alpha/sparc diverge).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

/// The last OS error as an `io::Error` (every wrapped syscall reports
/// failure through `errno`).
fn last_error() -> io::Error {
    io::Error::last_os_error()
}

/// Which readiness conditions a registration subscribes to. Error and
/// hang-up conditions are always delivered; they cannot be masked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut mask = EPOLLRDHUP;
        if self.readable {
            mask |= EPOLLIN;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// One delivered readiness event: the registration's token plus the
/// conditions that fired.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `token` passed at registration.
    pub token: u64,
    /// The fd has bytes to read, or the peer closed its write half
    /// (a subsequent `read` returning 0 disambiguates).
    pub readable: bool,
    /// The fd accepts writes without blocking.
    pub writable: bool,
    /// An error or hang-up condition: the fd should be read to EOF (or
    /// the error collected) and deregistered.
    pub closed: bool,
}

/// A reusable buffer of delivered events, sized once at construction.
#[derive(Debug)]
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let events = self.events;
        let data = self.data;
        write!(f, "EpollEvent {{ events: {events:#x}, data: {data} }}")
    }
}

impl Events {
    /// A buffer able to carry `capacity` events per [`Poller::wait`]
    /// call (floored at 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Number of events the last [`Poller::wait`] delivered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last wait delivered nothing (timeout).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the events of the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            let events = raw.events;
            Event {
                token: raw.data,
                readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: events & EPOLLOUT != 0,
                closed: events & (EPOLLERR | EPOLLHUP) != 0,
            }
        })
    }
}

/// A level-triggered epoll instance owning its kernel fd.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// The `epoll_create1` failure, e.g. fd exhaustion.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the only failure mode and is checked below.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut event = event;
        let ptr = event
            .as_mut()
            .map_or(std::ptr::null_mut(), std::ptr::from_mut);
        // SAFETY: `ptr` is either null (DEL ignores it) or points at a
        // live EpollEvent on this stack frame for the call's duration.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
        if rc < 0 {
            return Err(last_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure (`EEXIST` if already registered).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Re-arms an existing registration with a new interest set.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure (`ENOENT` if never registered).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Removes `fd`'s registration. Harmless to call for an fd the
    /// kernel already dropped (closing an fd deregisters it).
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure other than `ENOENT`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        match self.ctl(EPOLL_CTL_DEL, fd, None) {
            Err(e) if e.raw_os_error() == Some(2) => Ok(()), // ENOENT
            other => other,
        }
    }

    /// Waits for readiness, filling `events`. `None` blocks until an
    /// event arrives; `Some(d)` waits at most `d` (rounded **up** to the
    /// next millisecond so a 100µs deadline cannot spin at zero).
    /// Returns the number of events delivered; 0 means the timeout
    /// elapsed. `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// The `epoll_wait` failure.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.len = 0;
        let millis: c_int = match timeout {
            None => -1,
            Some(d) => {
                let up = d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
                c_int::try_from(up).unwrap_or(c_int::MAX)
            }
        };
        let capacity = c_int::try_from(events.buf.len()).unwrap_or(c_int::MAX);
        loop {
            // SAFETY: the buffer outlives the call and its length bounds
            // maxevents, so the kernel writes only into owned memory.
            let rc = unsafe { epoll_wait(self.epfd, events.buf.as_mut_ptr(), capacity, millis) };
            if rc >= 0 {
                events.len = rc as usize;
                return Ok(events.len);
            }
            let err = last_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this struct and closed exactly once.
        unsafe { close(self.epfd) };
    }
}

/// A cross-thread wakeup handle: an `eventfd` registered with the
/// poller like any other fd. Any thread may call [`Waker::wake`]; the
/// reactor drains the counter with [`Waker::drain`] when the token
/// fires.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd (`EFD_CLOEXEC | EFD_NONBLOCK`).
    ///
    /// # Errors
    ///
    /// The `eventfd` failure.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: eventfd takes no pointers; failure is the checked
        // negative return.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(last_error());
        }
        Ok(Waker { fd })
    }

    /// Makes the eventfd readable, waking a poller blocked on it.
    /// Wakes coalesce (the eventfd is a counter), so calling this from
    /// many threads costs one wakeup, not many.
    ///
    /// # Errors
    ///
    /// The `write` failure other than `EAGAIN` (a saturated counter is
    /// already a pending wake).
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a stack u64, the format
        // eventfd requires.
        let rc = unsafe { sys_write(self.fd, std::ptr::from_ref(&one).cast(), 8) };
        if rc < 0 {
            let err = last_error();
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Consumes all pending wakes so the (level-triggered) fd stops
    /// reporting readable.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        // SAFETY: reads exactly 8 bytes into a stack u64; EAGAIN (no
        // pending wake) is fine.
        let _ = unsafe { sys_read(self.fd, std::ptr::from_mut(&mut counter).cast(), 8) };
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this struct and closed exactly once.
        unsafe { close(self.fd) };
    }
}

/// Toggles `O_NONBLOCK` on an fd via `fcntl` (std exposes this for
/// sockets but not for arbitrary fds, and the reactor needs it before
/// handing a socket to epoll).
///
/// # Errors
///
/// The `fcntl` failure.
pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    // SAFETY: F_GETFL/F_SETFL take and return plain integers.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(last_error());
    }
    let wanted = if nonblocking {
        flags | O_NONBLOCK
    } else {
        flags & !O_NONBLOCK
    };
    if wanted != flags {
        // SAFETY: see above; the computed flag word is a valid argument.
        let rc = unsafe { fcntl(fd, F_SETFL, wanted) };
        if rc < 0 {
            return Err(last_error());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    const WAKER_TOKEN: u64 = u64::MAX;

    #[test]
    fn waker_wakes_a_blocked_poller_and_drains() {
        let poller = Poller::new().expect("epoll");
        let waker = Waker::new().expect("eventfd");
        poller
            .add(waker.as_raw_fd(), WAKER_TOKEN, Interest::READABLE)
            .expect("register waker");
        let mut events = Events::with_capacity(8);

        // Without a wake: the timeout elapses and nothing is delivered.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
        assert!(events.is_empty());

        // Two wakes coalesce into one readable event carrying the token.
        waker.wake().expect("wake");
        waker.wake().expect("wake again");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        let event = events.iter().next().expect("one event");
        assert_eq!(event.token, WAKER_TOKEN);
        assert!(event.readable);
        assert!(!event.closed);

        // Drained: the level-triggered fd stops reporting readable.
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn sockets_report_readable_on_data_and_closed_on_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        set_nonblocking(server.as_raw_fd(), true).expect("nonblocking");

        let poller = Poller::new().expect("epoll");
        poller
            .add(server.as_raw_fd(), 7, Interest::READABLE)
            .expect("register");
        let mut events = Events::with_capacity(8);

        // Idle socket: timeout.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);

        client.write_all(b"ping").expect("send");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        let event = events.iter().next().expect("event");
        assert_eq!(event.token, 7);
        assert!(event.readable);

        // Nonblocking read consumes the bytes; the level-triggered fd
        // goes quiet again.
        let mut sink = [0u8; 16];
        let mut server_reader = &server;
        assert_eq!(server_reader.read(&mut sink).expect("read"), 4);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);

        // Peer close: readable again (EOF is a read condition) and the
        // next read returns 0.
        drop(client);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        assert!(events.iter().next().expect("event").readable);
        assert_eq!(server_reader.read(&mut sink).expect("read eof"), 0);
        poller.delete(server.as_raw_fd()).expect("deregister");
    }

    #[test]
    fn interest_rearming_switches_between_read_and_write() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        set_nonblocking(server.as_raw_fd(), true).expect("nonblocking");

        let poller = Poller::new().expect("epoll");
        // Writable interest on an idle socket with empty send buffer:
        // immediately ready.
        poller
            .add(server.as_raw_fd(), 3, Interest::WRITABLE)
            .expect("register");
        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        assert!(events.iter().next().expect("event").writable);

        // Re-armed to read interest only: no data pending, so quiet.
        poller
            .modify(server.as_raw_fd(), 3, Interest::READABLE)
            .expect("modify");
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
        drop(client);
    }

    #[test]
    fn nonblocking_reads_report_would_block() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        set_nonblocking(server.as_raw_fd(), true).expect("nonblocking");
        let mut sink = [0u8; 8];
        let err = (&server).read(&mut sink).expect_err("no data yet");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // And the toggle is reversible.
        set_nonblocking(server.as_raw_fd(), false).expect("blocking again");
    }

    #[test]
    fn delete_of_an_unregistered_fd_is_harmless() {
        let poller = Poller::new().expect("epoll");
        let waker = Waker::new().expect("eventfd");
        poller.delete(waker.as_raw_fd()).expect("noent tolerated");
    }
}
