//! Vendored minimal `criterion` shim.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! small wall-clock benchmark harness exposing the criterion 0.5 API subset
//! its bench targets use: [`Criterion`] with `bench_function` /
//! `benchmark_group`, [`BenchmarkGroup`] with `bench_with_input`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`], and the `criterion_group!` / `criterion_main!` macros
//! (both forms).
//!
//! Measurements are real: each benchmark is warmed up, then timed over
//! `sample_size` samples whose iteration counts are auto-scaled so a sample
//! takes a meaningful slice of wall time. Output reports min / mean / max
//! per-iteration latency. There is no statistical outlier analysis, HTML
//! report, or baseline comparison. Under `cargo test` (which passes
//! `--test`) every benchmark runs exactly one iteration as a smoke test.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost; the shim times routines
/// individually, so the variants only influence batching granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Many small inputs per batch.
    SmallInput,
    /// Few large inputs per batch.
    LargeInput,
    /// One fresh input per timed iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id with only a parameter component.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            full: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { full: name }
    }
}

/// Shared measurement settings.
#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    target_sample: Duration,
    /// `--test` mode: run each routine once, skip timing loops.
    smoke_only: bool,
    /// `--quick` mode: cut sample counts for fast local runs.
    quick: bool,
}

impl Settings {
    fn effective_samples(&self) -> usize {
        if self.quick {
            self.sample_size.clamp(2, 10)
        } else {
            self.sample_size
        }
    }
}

/// The benchmark manager handed to every `criterion_group!` target.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            settings: Settings {
                sample_size: 100,
                warm_up: Duration::from_millis(300),
                target_sample: Duration::from_millis(20),
                smoke_only: false,
                quick: false,
            },
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.settings.warm_up = d;
        self
    }

    /// Sets the wall-time budget one sample aims for.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        // The real crate budgets the whole sampling phase; the shim times
        // per-sample, so split the budget across the configured samples.
        let per = d.as_nanos() / (self.settings.sample_size.max(1) as u128);
        self.settings.target_sample = Duration::from_nanos(per.min(u128::from(u64::MAX)) as u64);
        self
    }

    #[doc(hidden)]
    pub fn __configure_from_args(mut self, args: &[String]) -> Criterion {
        if args.iter().any(|a| a == "--test") {
            self.settings.smoke_only = true;
        }
        if args.iter().any(|a| a == "--quick") {
            self.settings.quick = true;
        }
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.settings, &id.into().full, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            settings: self.settings,
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    settings: Settings,
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().full);
        run_benchmark(&self.settings, &full, &mut f);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        run_benchmark(&self.settings, &full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group. (The shim prints results eagerly; this is a no-op
    /// kept for API compatibility.)
    pub fn finish(self) {}
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F>(settings: &Settings, name: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if settings.smoke_only {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok (smoke)");
        return;
    }

    // Calibrate: grow the per-sample iteration count until one sample costs
    // a measurable slice of wall time, warming caches along the way.
    let mut iterations: u64 = 1;
    let warm_up_start = Instant::now();
    loop {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= settings.target_sample || iterations >= 1 << 30 {
            break;
        }
        if warm_up_start.elapsed() >= settings.warm_up && b.elapsed > Duration::ZERO {
            // Scale straight to the target using the measured rate.
            let per_iter = b.elapsed.as_nanos().max(1) / u128::from(iterations);
            let needed = settings.target_sample.as_nanos() / per_iter.max(1);
            iterations = needed.clamp(1, 1 << 30) as u64;
            let mut b = Bencher {
                iterations,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            break;
        }
        iterations = iterations.saturating_mul(2);
    }

    let samples = settings.effective_samples();
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iterations as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{name:<60} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        samples,
        iterations,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runnable by `criterion_main!`.
/// Supports both the positional and the `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(args: &[String]) {
            let mut c = $crate::Criterion::__configure_from_args($config, args);
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `fn main` running the listed groups, tolerating the extra
/// arguments cargo passes to bench binaries (`--bench`, `--test`, filters).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let args: ::std::vec::Vec<::std::string::String> =
                ::std::env::args().skip(1).collect();
            $($group(&args);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        quick().bench_function("smoke", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = quick();
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::new("sum", 4), &vec![1u64, 2, 3, 4], |b, v| {
            b.iter(|| v.iter().sum::<u64>());
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        g.finish();
    }

    #[test]
    fn test_mode_runs_once() {
        let args = vec!["--test".to_string()];
        let mut c = Criterion::default().__configure_from_args(&args);
        let mut count = 0u64;
        c.bench_function("once", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }
}
