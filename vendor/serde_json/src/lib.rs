//! Vendored minimal `serde_json` shim over the in-repo serde [`Value`] model.
//!
//! Implements the subset of the real crate's API that this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], and an [`Error`] type usable with `?` and
//! `std::error::Error`. The JSON grammar is RFC 8259: objects, arrays,
//! strings with escapes (including `\uXXXX` surrogate pairs), numbers,
//! booleans and `null`.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization or deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
    /// Byte offset of a parse error, when known.
    offset: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Error {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }

    fn data(msg: impl Into<String>) -> Error {
        Error {
            msg: msg.into(),
            offset: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::data(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible in this shim (the signature matches the real crate).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this shim (the signature matches the real crate).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON, trailing garbage, or a value whose
/// shape does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

/// Serializes any value into the shim's [`Value`] tree.
///
/// # Errors
///
/// Infallible in this shim (the signature matches the real crate).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

// ── writer ──────────────────────────────────────────────────────────────

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // `Display` for f64 omits the fraction for whole numbers;
                // keep the value recognizably floating-point.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Infinity/NaN; the real crate errors here, we
                // write null (nothing in this workspace serializes these).
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ── parser ──────────────────────────────────────────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters after JSON value", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::parse(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::parse(
                format!("invalid literal, expected `{lit}`"),
                self.pos,
            ))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::parse("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::parse("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::parse("unpaired surrogate", self.pos));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::parse("unpaired surrogate", self.pos));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::parse("invalid low surrogate", self.pos));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::parse("invalid code point", self.pos))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::parse("invalid code point", self.pos))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(Error::parse("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::parse("unescaped control character", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse("invalid utf-8", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse("invalid number", start))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::parse("integer out of range", start))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::parse("integer out of range", start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for json in ["null", "true", "false", "0", "42", "-17", "1.5", "\"hi\""] {
            let v = parse_value_complete(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-3}"#;
        let v = parse_value_complete(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_printing_is_parseable() {
        let v = parse_value_complete(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(parse_value_complete(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value_complete(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".to_owned()));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "{", "[1,", "\"x", "tru", "{\"a\":}", "1 2", "{'a':1}", "", "[1 2]", "nul",
        ] {
            assert!(parse_value_complete(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert!(from_str::<Vec<u64>>("[1,-2]").is_err());
        assert!(from_str::<bool>("[true]").is_err());
    }

    #[test]
    fn float_formatting_stays_float() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }
}
