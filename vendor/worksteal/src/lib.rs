//! Vendored minimal work-stealing thread pool (offline build).
//!
//! An API-compatible subset of the rayon-core surface the workspace needs:
//! a fixed-width [`ThreadPool`] with a [`ThreadPool::scope`] that runs
//! borrowed (non-`'static`) closures and joins them all before returning.
//!
//! Design, in order of priority:
//!
//! * **Correctness over throughput.** All queues live behind one `Mutex` +
//!   `Condvar`; the jobs this workspace submits are millisecond-scale
//!   schedulability analyses, so lock traffic is noise. Per-worker deques
//!   still give work-stealing semantics: a worker pops its own queue from
//!   the back (LIFO, cache-warm), steals from the *front* of the longest
//!   foreign queue (FIFO, oldest first), and falls back to a shared
//!   injector for jobs submitted from outside the pool.
//! * **No deadlocks under nesting.** A thread blocked in `scope` waiting
//!   for its spawned jobs *helps*: it executes queued jobs (anyone's) until
//!   its own are done. Nested scopes therefore always make progress, even
//!   on a pool of width 1.
//! * **Panics propagate.** The first panic of any spawned job is captured
//!   and re-raised from `scope` on the submitting thread, after all jobs
//!   of the scope have been joined.
//!
//! A pool of width ≤ 1 spawns no threads at all: `scope` runs every job
//! inline, in submission order, on the calling thread. That is the
//! sequential escape hatch the façade crate exposes.

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queues of pending jobs, all behind one lock.
#[derive(Default)]
struct Queues {
    /// One deque per worker thread; owner pops the back, thieves the front.
    locals: Vec<VecDeque<Job>>,
    /// Jobs submitted from threads outside the pool.
    injector: VecDeque<Job>,
    shutdown: bool,
}

impl Queues {
    /// Next job for worker `index`: own queue first, then the injector,
    /// then steal the oldest job of the longest foreign queue.
    fn take_for(&mut self, index: usize) -> Option<Job> {
        if let Some(job) = self.locals[index].pop_back() {
            return Some(job);
        }
        self.take_foreign(Some(index))
    }

    /// Next job for a helping thread that owns no local queue.
    fn take_any(&mut self) -> Option<Job> {
        self.take_foreign(None)
    }

    fn take_foreign(&mut self, own: Option<usize>) -> Option<Job> {
        if let Some(job) = self.injector.pop_front() {
            return Some(job);
        }
        let victim = self
            .locals
            .iter()
            .enumerate()
            .filter(|(i, q)| Some(*i) != own && !q.is_empty())
            .max_by_key(|(_, q)| q.len())
            .map(|(i, _)| i)?;
        self.locals[victim].pop_front()
    }
}

struct Shared {
    queues: Mutex<Queues>,
    /// Signalled on every job submission, and on the completion that
    /// drops a scope's pending count to zero.
    work: Condvar,
}

thread_local! {
    /// `(pool tag, worker index + 1)` of the pool this thread works for;
    /// `(0, 0)` when the thread is not a pool worker. The tag keeps workers
    /// of distinct pools from pushing into each other's local queues.
    static WORKER: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
}

/// A fixed-width work-stealing thread pool.
///
/// `width` counts the submitting thread: a pool of width `w` runs at most
/// `w` jobs concurrently — `w − 1` on worker threads plus the thread
/// blocked in [`ThreadPool::scope`], which helps while it waits. Width 1
/// spawns no threads and runs everything inline.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    width: usize,
}

impl ThreadPool {
    /// Creates a pool of the given width (clamped to at least 1).
    #[must_use]
    pub fn new(width: usize) -> ThreadPool {
        let width = width.max(1);
        let workers = width - 1;
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues {
                locals: (0..workers).map(|_| VecDeque::new()).collect(),
                injector: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("worksteal-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            width,
        }
    }

    /// The concurrency width this pool was built with (≥ 1).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Runs `f` with a [`Scope`] on which borrowed jobs can be spawned,
    /// then blocks — helping to execute queued jobs — until every job
    /// spawned on the scope has finished.
    ///
    /// # Panics
    ///
    /// If `f` or any spawned job panics, the (first) panic is re-raised
    /// here after all jobs of the scope have been joined.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'_, 'scope>) -> R) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
            }),
            _scope: PhantomData,
        };
        // Join before propagating anything: spawned jobs borrow stack data
        // of `f`'s caller, so they must be done even when `f` panics.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.help_until_done(&scope.state);
        let job_panic = scope.state.panic.lock().unwrap().take();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Tag distinguishing this pool's workers in the thread-local.
    fn tag(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }

    fn push(&self, job: Job) {
        let mut queues = self.shared.queues.lock().unwrap();
        let (tag, index) = WORKER.get();
        if tag == self.tag() && index > 0 {
            queues.locals[index - 1].push_back(job);
        } else {
            queues.injector.push_back(job);
        }
        self.shared.work.notify_one();
    }

    /// Executes queued jobs (anyone's) until `state.pending` drops to zero.
    fn help_until_done(&self, state: &ScopeState) {
        while state.pending.load(Ordering::Acquire) != 0 {
            let job = {
                let mut queues = self.shared.queues.lock().unwrap();
                if state.pending.load(Ordering::Acquire) == 0 {
                    return;
                }
                match queues.take_any() {
                    Some(job) => Some(job),
                    None => {
                        // The outstanding jobs are running on workers; sleep
                        // until a completion wakes us. The timeout is only a
                        // backstop — completions notify under the lock.
                        let _ = self
                            .shared
                            .work
                            .wait_timeout(queues, Duration::from_millis(1))
                            .unwrap();
                        None
                    }
                }
            };
            if let Some(job) = job {
                job();
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.queues.lock().unwrap().shutdown = true;
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    WORKER.set((Arc::as_ptr(shared) as usize, index + 1));
    loop {
        let job = {
            let mut queues = shared.queues.lock().unwrap();
            loop {
                if let Some(job) = queues.take_for(index) {
                    break job;
                }
                if queues.shutdown {
                    return;
                }
                queues = shared.work.wait(queues).unwrap();
            }
        };
        job();
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

/// Handle for spawning borrowed jobs inside [`ThreadPool::scope`].
pub struct Scope<'pool, 'scope> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant in `'scope`, as in rayon: keeps callers from shrinking the
    /// lifetime of the borrows a spawned job captures.
    _scope: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Spawns `body` on the pool. It may borrow anything that outlives the
    /// enclosing `scope` call; panics are captured and re-raised by `scope`.
    pub fn spawn(&self, body: impl FnOnce() + Send + 'scope) {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let shared = Arc::clone(&self.pool.shared);
        let wrapped = move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            // Only the scope owner waits on completions, and only the drop
            // to zero can unblock it — intermediate completions would wake
            // it to no effect (and wake every idle worker with it). Notify
            // under the lock so an owner that just checked `pending` and is
            // about to wait cannot miss the wakeup; its wait also has a
            // timeout backstop.
            if state.pending.fetch_sub(1, Ordering::Release) == 1 {
                let _guard = shared.queues.lock().unwrap();
                shared.work.notify_all();
            }
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(wrapped);
        // SAFETY: `scope` does not return (or propagate a panic) before
        // `help_until_done` has observed `pending == 0`, i.e. before every
        // spawned job has run to completion and dropped its captures. The
        // borrows of lifetime `'scope` inside `body` therefore never outlive
        // their referents; the transmute only erases that lifetime so the
        // job can sit in the (`'static`) queues.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        if self.pool.width <= 1 {
            job();
        } else {
            self.pool.push(job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn width_is_clamped_to_one() {
        assert_eq!(ThreadPool::new(0).width(), 1);
        assert_eq!(ThreadPool::new(3).width(), 3);
    }

    #[test]
    fn scope_joins_all_jobs() {
        for width in [1, 2, 4] {
            let pool = ThreadPool::new(width);
            let sum = AtomicU64::new(0);
            pool.scope(|s| {
                for i in 1..=100u64 {
                    let sum = &sum;
                    s.spawn(move || {
                        sum.fetch_add(i, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 5050, "width {width}");
        }
    }

    #[test]
    fn jobs_borrow_stack_data() {
        let pool = ThreadPool::new(4);
        let data = vec![1u64, 2, 3, 4, 5];
        let mut out = vec![0u64; data.len()];
        pool.scope(|s| {
            for (slot, &x) in out.iter_mut().zip(&data) {
                s.spawn(move || *slot = x * x);
            }
        });
        assert_eq!(out, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn nested_scopes_make_progress() {
        for width in [1, 2, 3] {
            let pool = ThreadPool::new(width);
            let total = AtomicU64::new(0);
            pool.scope(|outer| {
                for _ in 0..4 {
                    let (pool, total) = (&pool, &total);
                    outer.spawn(move || {
                        pool.scope(|inner| {
                            for _ in 0..4 {
                                inner.spawn(move || {
                                    total.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), 16, "width {width}");
        }
    }

    #[test]
    fn width_one_runs_inline_in_submission_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..5 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let answer = pool.scope(|_| 42);
        assert_eq!(answer, 42);
    }

    #[test]
    fn panic_in_job_propagates_after_join() {
        for width in [1, 3] {
            let pool = ThreadPool::new(width);
            let completed = AtomicU64::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    s.spawn(|| panic!("job panic"));
                    for _ in 0..8 {
                        let completed = &completed;
                        s.spawn(move || {
                            completed.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }));
            assert!(result.is_err(), "width {width}");
            // Every sibling job was still joined before the panic resumed.
            assert_eq!(completed.load(Ordering::Relaxed), 8, "width {width}");
        }
    }

    #[test]
    fn pool_survives_many_small_scopes() {
        let pool = ThreadPool::new(4);
        for round in 0..50u64 {
            let sum = AtomicU64::new(0);
            pool.scope(|s| {
                for i in 0..10 {
                    let sum = &sum;
                    s.spawn(move || {
                        sum.fetch_add(i, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 45, "round {round}");
        }
    }
}
