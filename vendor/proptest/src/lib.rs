//! Vendored minimal `proptest` shim.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! small property-testing harness exposing the subset of the proptest 1.x
//! API its test suites use: [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! [`collection::vec`], [`any`], `prop_oneof!`, and the `proptest!` macro
//! with `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! message and the deterministic seed instead of a minimised input), and
//! `.proptest-regressions` files are not consulted. Case generation is
//! deterministic per test (seeded from the test's module path and name), so
//! failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// The RNG driving all generation. Deterministic per test.
    pub type TestRng = StdRng;

    #[doc(hidden)]
    pub use rand::SeedableRng as __SeedableRng;

    /// A recipe for producing values of `Self::Value`.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy as a trait object; used by `prop_oneof!` so arms of
    /// different concrete types can share one vector.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over the given non-empty arm list.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Types with a canonical full-domain strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` values with a length drawn
    /// from `size` (a fixed `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    /// Per-block runner configuration, set via `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// The default configuration with `cases` overridden.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` filtered this case out; generation retries.
        Reject(String),
    }

    /// A stable 64-bit FNV-1a hash of the test's full name, used to seed
    /// its RNG so every run generates the identical case sequence.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests; see the crate docs for the
/// supported subset (optional leading `#![proptest_config(expr)]`, then
/// `fn name(pat in strategy, ..) { body }` items with outer attributes).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::seed_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut rng: $crate::strategy::TestRng =
                <$crate::strategy::TestRng as $crate::strategy::__SeedableRng>::seed_from_u64(seed);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $p = $crate::strategy::Strategy::generate(&$s, &mut rng);)+
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).saturating_add(4096),
                            "proptest {}: too many prop_assume! rejections \
                             ({rejected} rejects for {accepted} accepted cases)",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {} (seed {:#x}): {}",
                            stringify!($name),
                            accepted,
                            seed,
                            msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Like `assert!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r,
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            __l,
                            __r,
                        )),
                    );
                }
            }
        }
    };
}

/// Like `assert_ne!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current case (without failing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (1u64..=50).prop_flat_map(|hi| (0u64..=hi, Just(hi)))
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..=9, f in 0.0f64..1.0) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_keeps_dependency(pair in arb_pair()) {
            prop_assert!(pair.0 <= pair.1, "{} > {}", pair.0, pair.1);
        }

        #[test]
        fn vec_length_in_range(v in prop::collection::vec(any::<bool>(), 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
        }

        #[test]
        fn oneof_hits_every_arm(picks in prop::collection::vec(prop_oneof![
            Just(1u8), Just(2u8), Just(3u8),
        ], 64)) {
            prop_assert_eq!(picks.len(), 64);
            prop_assert!(picks.iter().all(|p| (1..=3).contains(p)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn same_seed_generates_same_sequence() {
        use crate::strategy::{Strategy, TestRng};
        use rand::SeedableRng;
        let s = crate::collection::vec(0u64..1000, 10);
        let a = s.generate(&mut TestRng::seed_from_u64(9));
        let b = s.generate(&mut TestRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
