//! Randomized checks of the paper's analytical results: Lemma 1, Lemma 2 /
//! Theorem 1 and the monotonicity assumptions behind the speed search.

use fedsched::core::feasibility::demand_load;
use fedsched::core::fedcons::{fedcons, FedConsConfig};
use fedsched::core::minprocs::min_procs;
use fedsched::core::speedup::{required_speed, system_at_speed};
use fedsched::dag::rational::Rational;
use fedsched::dag::system::TaskSystem;
use fedsched::dag::task::DagTask;
use fedsched::dag::time::Duration;
use fedsched::gen::system::SystemConfig;
use fedsched::gen::{DeadlineTightness, Span, Topology, WcetRange};
use fedsched::graham::list::PriorityPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lemma 1: a task feasible (by the `max(len, vol/m) ≤ D` bound) on `m`
/// unit-speed processors is MINPROCS-schedulable on `m` processors of speed
/// `2 − 1/m`.
#[test]
fn lemma1_holds_on_random_dags() {
    let topo = Topology::ErdosRenyi {
        vertices: Span::new(6, 24),
        edge_probability: 0.2,
    };
    for seed in 0..80u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = topo.generate(&mut rng, WcetRange::new(1, 15));
        let len = dag.longest_chain().length.ticks();
        let vol = dag.volume().ticks();
        if vol == len {
            continue;
        }
        let d = rng.gen_range(len..=vol);
        let task = DagTask::new(dag, Duration::new(d), Duration::new(2 * d)).unwrap();
        let m_lb = u32::try_from(vol.div_ceil(d)).unwrap().max(1);
        let system: TaskSystem = [task].into_iter().collect();
        // At speed 2 − 1/m (= (2m−1)/m) MINPROCS must succeed on m_lb.
        let boosted = system_at_speed(
            &system,
            Rational::new(2 * i128::from(m_lb) - 1, i128::from(m_lb)),
        );
        assert!(
            min_procs(&boosted.tasks()[0], m_lb, PriorityPolicy::ListOrder).is_some(),
            "Lemma 1 violated at seed {seed} (m_lb = {m_lb})"
        );
    }
}

/// Theorem 1 (via Lemma 2): a low-density system whose load/utilization
/// lower bound is `m` is FEDCONS-schedulable on `m` processors of speed
/// `3 − 1/m`.
#[test]
fn theorem1_holds_on_random_low_density_systems() {
    let cfg = SystemConfig::new(10, 2.5)
        .with_max_task_utilization(0.9)
        .with_tightness(DeadlineTightness::new(0.4, 1.0));
    for seed in 0..50u64 {
        let Some(raw) = cfg.generate_seeded(seed) else {
            continue;
        };
        let system: TaskSystem = raw.into_iter().filter(DagTask::is_low_density).collect();
        if system.len() < 2 {
            continue;
        }
        let m_lb = u32::try_from(
            system
                .total_utilization()
                .ceil()
                .max(demand_load(&system, 100_000).ceil())
                .max(1),
        )
        .unwrap();
        let boosted = system_at_speed(
            &system,
            Rational::new(3 * i128::from(m_lb) - 1, i128::from(m_lb)),
        );
        assert!(
            fedcons(&boosted, m_lb, FedConsConfig::default()).is_ok(),
            "Theorem 1 violated at seed {seed} (m_lb = {m_lb})"
        );
    }
}

/// The speed search assumes monotonicity: if FEDCONS accepts at speed `s`
/// it accepts at every faster grid speed. Spot-check across random systems.
#[test]
fn fedcons_acceptance_is_monotone_in_speed() {
    let cfg = SystemConfig::new(6, 3.0).with_max_task_utilization(1.4);
    let m = 4;
    for seed in 0..30u64 {
        let Some(system) = cfg.generate_seeded(seed) else {
            continue;
        };
        let mut last = false;
        for k in 4..=24i128 {
            let s = Rational::new(k, 8);
            let ok = fedcons(&system_at_speed(&system, s), m, FedConsConfig::default()).is_ok();
            assert!(
                ok || !last,
                "non-monotone acceptance at seed {seed}, speed {s}"
            );
            last = ok;
        }
    }
}

/// `required_speed` returns a grid point that is genuinely minimal: the
/// next-lower grid speed is rejected.
#[test]
fn required_speed_is_minimal_on_grid() {
    let cfg = SystemConfig::new(6, 4.5).with_max_task_utilization(1.5);
    let m = 3;
    let grid = 16u32;
    for seed in 0..30u64 {
        let Some(system) = cfg.generate_seeded(seed) else {
            continue;
        };
        let accepts = |s: &TaskSystem| fedcons(s, m, FedConsConfig::default()).is_ok();
        let Some(speed) = required_speed(&system, accepts, grid, 4) else {
            continue;
        };
        assert!(accepts(&system_at_speed(&system, speed)));
        let below = speed - Rational::new(1, i128::from(grid));
        if below > Rational::ZERO {
            assert!(
                !accepts(&system_at_speed(&system, below)),
                "seed {seed}: speed {speed} not minimal"
            );
        }
    }
}
