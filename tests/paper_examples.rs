//! E1 — the paper's worked examples, verified end to end (DESIGN.md §3).

use fedsched::core::baselines::global_edf_density_test;
use fedsched::core::feasibility::{demand_load, necessary_feasible};
use fedsched::core::fedcons::{fedcons, FedConsConfig, FedConsFailure};
use fedsched::dag::examples::{paper_example2, paper_figure1};
use fedsched::dag::rational::Rational;
use fedsched::dag::system::TaskSystem;
use fedsched::dag::task::DeadlineClass;
use fedsched::dag::time::Duration;
use fedsched::graham::list::{graham_upper_bound, list_schedule, makespan_lower_bound};

/// Example 1: every quantity the paper states for Figure 1.
#[test]
fn example1_quantities() {
    let tau1 = paper_figure1();
    assert_eq!(tau1.dag().vertex_count(), 5, "five vertices");
    assert_eq!(tau1.dag().edge_count(), 5, "five directed edges");
    assert_eq!(tau1.longest_chain_length(), Duration::new(6), "len₁ = 6");
    assert_eq!(tau1.volume(), Duration::new(9), "vol₁ = 9");
    assert_eq!(tau1.density(), Rational::new(9, 16), "δ₁ = 9/16");
    assert_eq!(tau1.utilization(), Rational::new(9, 20), "u₁ = 9/20");
    assert!(
        tau1.is_low_density(),
        "since δ₁ < 1, τ₁ is a low-density task"
    );
    assert_eq!(tau1.deadline_class(), DeadlineClass::Constrained);
}

/// Figure 1 admitted and analysed across the stack.
#[test]
fn figure1_through_the_whole_stack() {
    let tau1 = paper_figure1();
    // Its DAG schedules within Graham's bounds on any processor count.
    for m in 1..=4 {
        let s = list_schedule(tau1.dag(), m);
        s.validate(tau1.dag()).unwrap();
        assert!(s.makespan() >= makespan_lower_bound(tau1.dag(), m));
        assert!(s.makespan() <= graham_upper_bound(tau1.dag(), m));
    }
    // FEDCONS admits it on one processor (it is low-density with vol ≤ D).
    let system: TaskSystem = [tau1].into_iter().collect();
    let schedule = fedcons(&system, 1, FedConsConfig::default()).unwrap();
    assert!(schedule.clusters().is_empty());
    assert_eq!(schedule.partition().used_processors(), 1);
}

/// Example 2: `U_sum = 1`, `len ≤ D`, yet the necessary speed is `n`.
#[test]
fn example2_unbounded_capacity_augmentation() {
    for n in [2u32, 8, 32] {
        let system = paper_example2(n);
        assert_eq!(system.total_utilization(), Rational::ONE);
        assert!(system.all_chains_feasible());
        // The work due in the first unit window is n: LOAD = n.
        assert_eq!(
            demand_load(&system, 1_000_000),
            Rational::from_integer(i128::from(n))
        );
        // The basic necessary conditions (utilization, chains, windows) are
        // all satisfied even on one processor — only the sharper LOAD
        // condition exposes the crunch, requiring n processors:
        assert!(necessary_feasible(&system, 1));
        assert!(demand_load(&system, 1_000_000) > Rational::from_integer(i128::from(n) - 1));
        // FEDCONS matches the necessary bound exactly (each task is
        // high-density with δ = 1 and receives its own processor).
        assert!(fedcons(&system, n, FedConsConfig::default()).is_ok());
        assert!(matches!(
            fedcons(&system, n - 1, FedConsConfig::default()),
            Err(FedConsFailure::HighDensityTask { .. })
        ));
        // The sequentialising global-EDF density test is strictly more
        // conservative here: with δ_max = 1 its condition collapses to
        // Σδ ≤ 1, so it rejects Example 2 even on n processors — where
        // FEDCONS (equivalent to one task per processor) accepts.
        assert!(!global_edf_density_test(&system, n));
    }
}

/// The Section V scope statement: arbitrary deadlines are out of scope and
/// explicitly rejected rather than mishandled.
#[test]
fn arbitrary_deadlines_rejected() {
    use fedsched::dag::task::DagTask;
    let t = DagTask::sequential(Duration::new(1), Duration::new(9), Duration::new(4)).unwrap();
    let system: TaskSystem = [t].into_iter().collect();
    assert!(matches!(
        fedcons(&system, 8, FedConsConfig::default()),
        Err(FedConsFailure::ArbitraryDeadline { .. })
    ));
}
