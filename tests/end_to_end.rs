//! End-to-end pipeline tests: generate → admit → independently verify every
//! artifact of the admission → simulate.

use fedsched::analysis::dbf::SequentialView;
use fedsched::analysis::edf::{edf_exact, edf_qpa, DEFAULT_BUDGET};
use fedsched::core::fedcons::{fedcons, FedConsConfig};
use fedsched::dag::system::TaskSystem;
use fedsched::dag::time::Duration;
use fedsched::gen::system::SystemConfig;
use fedsched::gen::{DeadlineTightness, Span, Topology};
use fedsched::graham::list::PriorityPolicy;
use fedsched::sim::federated::{simulate_federated, ClusterDispatch};
use fedsched::sim::model::{ArrivalModel, ExecutionModel, SimConfig};

fn generate(seed: u64, topology: Topology) -> Option<TaskSystem> {
    SystemConfig::new(8, 4.0)
        .with_max_task_utilization(1.6)
        .with_topology(topology)
        .with_tightness(DeadlineTightness::new(0.2, 1.0))
        .generate_seeded(seed)
}

fn topologies() -> Vec<Topology> {
    vec![
        Topology::Layered {
            layers: Span::new(2, 5),
            width: Span::new(1, 5),
            edge_probability: 0.3,
        },
        Topology::ErdosRenyi {
            vertices: Span::new(4, 18),
            edge_probability: 0.2,
        },
        Topology::NestedForkJoin {
            depth: Span::new(1, 2),
            branching: Span::new(2, 3),
        },
        Topology::SeriesParallel {
            operations: Span::new(3, 12),
        },
    ]
}

/// Every artifact of an accepted admission is independently verifiable:
/// templates are valid WCET schedules meeting the deadline, every task is
/// placed exactly once, and each shared processor passes *both* exact EDF
/// deciders.
#[test]
fn admission_artifacts_are_independently_verifiable() {
    let m = 8;
    let mut admitted = 0;
    for topology in topologies() {
        for seed in 0..40u64 {
            let Some(system) = generate(seed, topology) else {
                continue;
            };
            let Ok(schedule) = fedcons(&system, m, FedConsConfig::default()) else {
                continue;
            };
            admitted += 1;

            // Clusters: valid templates, within deadline, disjoint prefix.
            let mut placed = vec![false; system.len()];
            let mut next = 0u32;
            for c in schedule.clusters() {
                let task = system.task(c.task);
                c.template
                    .validate(task.dag())
                    .expect("template is a valid schedule");
                assert!(c.template.makespan() <= task.deadline());
                assert_eq!(c.first_processor, next, "clusters are a contiguous prefix");
                next += c.processors;
                assert!(!placed[c.task.index()]);
                placed[c.task.index()] = true;
                assert!(task.is_high_density());
            }
            assert_eq!(next, schedule.shared_first());

            // Shared pool: exact EDF on every processor, both deciders.
            for (_, ids) in schedule.partition().iter() {
                let views: Vec<SequentialView> = ids
                    .iter()
                    .map(|&id| SequentialView::of(system.task(id)))
                    .collect();
                assert!(edf_exact(&views, DEFAULT_BUDGET).unwrap().is_schedulable());
                assert!(edf_qpa(&views, DEFAULT_BUDGET).unwrap().is_schedulable());
                for &id in ids {
                    assert!(!placed[id.index()], "task placed twice");
                    placed[id.index()] = true;
                    assert!(system.task(id).is_low_density());
                }
            }
            assert!(placed.iter().all(|&p| p), "every task is placed");
        }
    }
    assert!(
        admitted >= 40,
        "only {admitted} systems admitted — sweep too weak"
    );
}

/// The full loop under every topology: admitted systems simulate clean with
/// worst-case and relaxed configurations.
#[test]
fn generate_admit_simulate_loop() {
    let m = 6;
    let mut simulated = 0;
    for topology in topologies() {
        for seed in 100..115u64 {
            let Some(system) = generate(seed, topology) else {
                continue;
            };
            let Ok(schedule) = fedcons(&system, m, FedConsConfig::default()) else {
                continue;
            };
            for config in [
                SimConfig::worst_case(Duration::new(40_000)),
                SimConfig {
                    horizon: Duration::new(40_000),
                    arrivals: ArrivalModel::SporadicUniformSlack {
                        max_extra_fraction: 0.4,
                    },
                    execution: ExecutionModel::UniformFraction { min_fraction: 0.3 },
                    seed,
                },
            ] {
                let report = simulate_federated(
                    &system,
                    &schedule,
                    config,
                    ClusterDispatch::Template,
                    PriorityPolicy::ListOrder,
                );
                assert!(report.is_clean(), "seed {seed}: {:?}", report.misses);
                simulated += report.jobs_scored;
            }
        }
    }
    assert!(simulated > 5_000, "simulated only {simulated} jobs");
}

/// Rejections are honest: when FEDCONS declines, the named reason is real —
/// a failing high-density task really cannot fit in the remaining
/// processors, and a failing partition task really fits on no processor.
#[test]
fn rejections_name_a_real_culprit() {
    use fedsched::core::fedcons::FedConsFailure;
    use fedsched::core::minprocs::min_procs;
    let m = 3;
    let mut seen_high = false;
    let mut seen_partition = false;
    for seed in 0..200u64 {
        let Some(system) = generate(
            seed,
            Topology::Layered {
                layers: Span::new(2, 4),
                width: Span::new(2, 6),
                edge_probability: 0.4,
            },
        ) else {
            continue;
        };
        match fedcons(&system, m, FedConsConfig::default()) {
            Ok(_) => {}
            Err(FedConsFailure::HighDensityTask { task, remaining }) => {
                seen_high = true;
                assert!(
                    min_procs(system.task(task), remaining, PriorityPolicy::ListOrder).is_none()
                );
            }
            Err(FedConsFailure::Partition(p)) => {
                seen_partition = true;
                assert!(system.task(p.task).is_low_density());
            }
            Err(FedConsFailure::ArbitraryDeadline { .. }) => {
                panic!("generator only emits constrained deadlines")
            }
        }
    }
    assert!(seen_high, "sweep should include high-density rejections");
    assert!(seen_partition, "sweep should include partition rejections");
}
