//! Round-trip tests for the JSON interchange forms of [`TaskSystem`] and
//! [`DagTask`] — the formats `fedsched generate` emits and every other
//! subcommand (including the admission server's `Admit` request) consumes —
//! plus rejection of malformed input.

use fedsched_dag::graph::DagBuilder;
use fedsched_dag::system::TaskSystem;
use fedsched_dag::task::DagTask;
use fedsched_dag::time::Duration;
use fedsched_gen::system::SystemConfig;

fn generated_system(seed: u64) -> TaskSystem {
    SystemConfig::new(12, 4.0)
        .with_max_task_utilization(0.9)
        .generate_seeded(seed)
        .expect("feasible generator target")
}

#[test]
fn task_system_roundtrips_compact_and_pretty() {
    let system = generated_system(7);
    let compact = serde_json::to_string(&system).unwrap();
    let back: TaskSystem = serde_json::from_str(&compact).unwrap();
    assert_eq!(system, back);

    let pretty = serde_json::to_string_pretty(&system).unwrap();
    let back_pretty: TaskSystem = serde_json::from_str(&pretty).unwrap();
    assert_eq!(system, back_pretty);
}

#[test]
fn roundtrip_preserves_derived_quantities() {
    let system = generated_system(11);
    let back: TaskSystem = serde_json::from_str(&serde_json::to_string(&system).unwrap()).unwrap();
    assert_eq!(system.total_utilization(), back.total_utilization());
    assert_eq!(system.total_density(), back.total_density());
    assert_eq!(system.deadline_class(), back.deadline_class());
    for ((_, a), (_, b)) in system.iter().zip(back.iter()) {
        assert_eq!(a.volume(), b.volume());
        assert_eq!(a.longest_chain_length(), b.longest_chain_length());
        assert_eq!(a.dag().edge_count(), b.dag().edge_count());
    }
}

#[test]
fn dag_task_with_edges_roundtrips() {
    let mut b = DagBuilder::new();
    let v = b.add_vertices([2, 3, 1, 4].map(Duration::new));
    b.add_edge(v[0], v[1]).unwrap();
    b.add_edge(v[0], v[2]).unwrap();
    b.add_edge(v[1], v[3]).unwrap();
    b.add_edge(v[2], v[3]).unwrap();
    let task = DagTask::new(b.build().unwrap(), Duration::new(9), Duration::new(12)).unwrap();
    let json = serde_json::to_string(&task).unwrap();
    let back: DagTask = serde_json::from_str(&json).unwrap();
    assert_eq!(task, back);
    assert_eq!(back.volume(), Duration::new(10));
    assert_eq!(back.longest_chain_length(), Duration::new(9));
}

#[test]
fn malformed_json_is_rejected() {
    // Syntax errors, truncations, and wrong shapes must all fail cleanly
    // (never panic, never yield a half-parsed system).
    let cases = [
        "",
        "{",
        "[1, 2",
        "null",
        "42",
        "\"tasks\"",
        "{\"tasks\": 3}",
        "{\"tasks\": [7]}",
        "{\"no_such_field\": []}",
        "{\"tasks\": [{\"deadline\": 4}]}",
    ];
    for bad in cases {
        assert!(
            serde_json::from_str::<TaskSystem>(bad).is_err(),
            "{bad:?} must not parse as a TaskSystem"
        );
    }
    assert!(serde_json::from_str::<DagTask>("{\"dag\": null}").is_err());
}

#[test]
fn wrongly_typed_fields_are_rejected() {
    // Take a valid document and corrupt one field's type.
    let system = generated_system(3);
    let good = serde_json::to_string(&system).unwrap();
    let corrupted = good.replacen("\"tasks\":[", "\"tasks\":\"", 1);
    assert!(serde_json::from_str::<TaskSystem>(&corrupted).is_err());
}
