//! # fedsched
//!
//! A complete, from-scratch implementation of **federated scheduling of
//! constrained-deadline sporadic DAG task systems** (Sanjoy Baruah,
//! DATE 2015), together with every substrate the paper depends on: the
//! sporadic DAG task model, Graham's List Scheduling, demand-bound /
//! exact-EDF analysis, Baruah–Fisher partitioning, baselines, random
//! workload generation, a discrete-event runtime simulator, and an
//! experiment harness that regenerates the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names. Depend on the individual `fedsched-*` crates if you only
//! need one layer.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dag`] | `fedsched-dag` | task model: time, rationals, DAGs, tasks, systems |
//! | [`graham`] | `fedsched-graham` | List Scheduling, templates, timing anomalies |
//! | [`analysis`] | `fedsched-analysis` | DBF/DBF*, exact EDF, first-fit partitioning |
//! | [`core`] | `fedsched-core` | `MINPROCS`, `FEDCONS`, baselines, speedup measurement |
//! | [`policy`] | `fedsched-policy` | the `SchedulingPolicy` trait, failure taxonomy, registry |
//! | [`sim`] | `fedsched-sim` | discrete-event federated & global-EDF runtimes |
//! | [`gen`] | `fedsched-gen` | reproducible random workload generation |
//! | [`experiments`] | `fedsched-experiments` | tables/figures of the paper's evaluation |
//!
//! # Quickstart
//!
//! Admit a task system onto 4 processors and replay it in the simulator:
//!
//! ```
//! use fedsched::core::fedcons::{fedcons, FedConsConfig};
//! use fedsched::dag::examples::paper_figure1;
//! use fedsched::dag::system::TaskSystem;
//! use fedsched::dag::time::Duration;
//! use fedsched::graham::list::PriorityPolicy;
//! use fedsched::sim::federated::{simulate_federated, ClusterDispatch};
//! use fedsched::sim::model::SimConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system: TaskSystem = [paper_figure1()].into_iter().collect();
//! let schedule = fedcons(&system, 4, FedConsConfig::default())?;
//! let report = simulate_federated(
//!     &system,
//!     &schedule,
//!     SimConfig::worst_case(Duration::new(100_000)),
//!     ClusterDispatch::Template,
//!     PriorityPolicy::ListOrder,
//! );
//! assert!(report.is_clean());
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for complete scenarios (quickstart, an
//! avionics pipeline, an autonomous-driving perception stack, and the
//! Graham-anomaly demonstration) and `EXPERIMENTS.md` for the reproduced
//! evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fedsched_analysis as analysis;
pub use fedsched_core as core;
pub use fedsched_dag as dag;
pub use fedsched_experiments as experiments;
pub use fedsched_gen as gen;
pub use fedsched_graham as graham;
pub use fedsched_policy as policy;
pub use fedsched_sim as sim;
