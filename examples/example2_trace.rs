//! The full observability pipeline over the paper's Example 2.
//!
//! ```text
//! cargo run --example example2_trace
//! ```
//!
//! Example 2 of the paper is the system showing that constrained deadlines
//! break capacity augmentation: `n` unit-work tasks with `D_i = 1`,
//! `T_i = n` have total utilization 1 but can demand `n` units of work in a
//! single time unit. FEDCONS therefore needs all `n` processors to admit
//! it. This example:
//!
//! 1. admits every task through the admission service's in-process state,
//!    stamping each request with a trace id and capturing the analysis
//!    spans/counters in the telemetry ring buffer;
//! 2. renders the service's Prometheus metrics after the admissions;
//! 3. simulates one hyperperiod of the admitted schedule under the
//!    watched runtime (anomaly watchdog on);
//! 4. exports runtime slices, analysis spans, and watchdog counters as one
//!    Chrome `trace_events` document, written to `example2.trace.json` —
//!    open it in `chrome://tracing` or <https://ui.perfetto.dev>.

use fedsched::core::fedcons::{fedcons, FedConsConfig};
use fedsched::dag::examples::paper_example2;
use fedsched::dag::time::Duration;
use fedsched::graham::list::PriorityPolicy;
use fedsched::sim::federated::{simulate_federated_watched, ClusterDispatch};
use fedsched::sim::model::SimConfig;
use fedsched_service::{render_prometheus, AdmissionConfig, AdmissionState};
use fedsched_telemetry::chrome::ChromeTraceBuilder;

const N: u32 = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = paper_example2(N);

    // 1. Admission with telemetry: one trace id per request.
    let mut state = AdmissionState::new(AdmissionConfig::new(N).with_telemetry(1024));
    for (k, task) in system.tasks().iter().enumerate() {
        let admitted = state
            .admit_traced(task.clone(), Some(k as u64))
            .map_err(|e| format!("Example 2 needs all {N} processors: {e:?}"))?;
        println!("trace:{k} admitted as token {}", admitted.token);
    }

    // 2. Metrics, exactly as `GET /metrics` would serve them.
    println!("\n--- Prometheus exposition (excerpt) ---");
    for line in render_prometheus(&state.snapshot())
        .lines()
        .filter(|l| l.starts_with("fedsched_admitted") || l.starts_with("fedsched_processors"))
    {
        println!("{line}");
    }

    // 3. One hyperperiod (all periods are `n`, so the hyperperiod is `n`
    //    ticks) under the anomaly watchdog.
    let schedule = fedcons(&system, N, FedConsConfig::default())?;
    let (report, trace, watchdog) = simulate_federated_watched(
        &system,
        &schedule,
        SimConfig::worst_case(Duration::new(u64::from(N))),
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    println!("\nRun: {report}");
    println!("Watchdog: {watchdog}");
    assert!(report.is_clean() && watchdog.is_quiet());
    assert_eq!(trace.find_overlap(), None);

    // 4. One Chrome trace document with all three event sources.
    let mut builder = ChromeTraceBuilder::new();
    builder.push_execution_trace(&trace);
    builder.push_events(&state.telemetry_events());
    builder.push_watchdog(&watchdog, u64::from(N));
    let events = builder.len();
    std::fs::write("example2.trace.json", builder.to_json())?;
    println!("\nWrote example2.trace.json ({events} events) — load it in chrome://tracing.");
    Ok(())
}
