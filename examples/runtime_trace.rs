//! Watch a federated system execute, tick by tick.
//!
//! ```text
//! cargo run --example runtime_trace
//! ```
//!
//! Admits a small mixed system, runs it with sporadic arrivals and variable
//! execution times, and renders the recorded execution trace of the first
//! 120 ticks as a Gantt chart — dedicated cluster rows on top, shared EDF
//! processors below. The trace is also checked for physical consistency
//! (no processor runs two things at once).

use fedsched::core::fedcons::{fedcons, FedConsConfig};
use fedsched::dag::graph::DagBuilder;
use fedsched::dag::system::TaskSystem;
use fedsched::dag::task::DagTask;
use fedsched::dag::time::{Duration, Time};
use fedsched::graham::list::PriorityPolicy;
use fedsched::sim::federated::{simulate_federated_traced, ClusterDispatch};
use fedsched::sim::model::{ArrivalModel, ExecutionModel, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // τ0: a fork-join with δ = 12/6 = 2 → dedicated cluster.
    let mut b = DagBuilder::new();
    let fork = b.add_vertex(Duration::new(1));
    let join = b.add_vertex(Duration::new(1));
    for _ in 0..5 {
        let mid = b.add_vertex(Duration::new(2));
        b.add_edge(fork, mid)?;
        b.add_edge(mid, join)?;
    }
    let wide = DagTask::new(b.build()?, Duration::new(6), Duration::new(12))?;
    // τ1, τ2: light sequential tasks sharing an EDF processor.
    let t1 = DagTask::sequential(Duration::new(2), Duration::new(7), Duration::new(14))?;
    let t2 = DagTask::sequential(Duration::new(3), Duration::new(16), Duration::new(20))?;

    let system: TaskSystem = [wide, t1, t2].into_iter().collect();
    let schedule = fedcons(&system, 4, FedConsConfig::default())?;
    println!("{schedule}");

    let (report, trace) = simulate_federated_traced(
        &system,
        &schedule,
        SimConfig {
            horizon: Duration::new(10_000),
            arrivals: ArrivalModel::SporadicUniformSlack {
                max_extra_fraction: 0.25,
            },
            execution: ExecutionModel::UniformFraction { min_fraction: 0.5 },
            seed: 7,
        },
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );

    println!("Run: {report}");
    assert!(report.is_clean());
    assert_eq!(trace.find_overlap(), None, "physically consistent");

    println!("\nFirst 120 ticks (rows P0..P2: τ0's cluster; P3: shared EDF):");
    println!("{}", trace.to_gantt(Time::ZERO, Time::new(120)));
    println!(
        "Total busy time over the whole run: {} ticks across {} processors.",
        trace.total_busy(),
        trace.processor_count()
    );
    Ok(())
}
