//! Why the runtime replays frozen templates: Graham's timing anomaly, live.
//!
//! ```text
//! cargo run --example anomaly_demo
//! ```
//!
//! Footnote 2 of the paper warns that re-running List Scheduling at run time
//! is unsafe because *reducing* execution times can *lengthen* the schedule.
//! This example reproduces Graham's classic 9-job instance, prints both
//! Gantt charts side by side, then runs the same task under the federated
//! runtime with both dispatchers: the template lookup table never misses,
//! the on-line re-run misses every single dag-job.

use fedsched::core::fedcons::{fedcons, FedConsConfig};
use fedsched::dag::system::TaskSystem;
use fedsched::dag::task::DagTask;
use fedsched::dag::time::Duration;
use fedsched::graham::anomaly::{classic_anomaly_dag, demonstrate_classic_anomaly};
use fedsched::graham::list::PriorityPolicy;
use fedsched::sim::federated::{simulate_federated, ClusterDispatch};
use fedsched::sim::model::{ArrivalModel, ExecutionModel, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Offline: the schedules themselves ──────────────────────────────
    let demo = demonstrate_classic_anomaly();
    println!("Graham's 9-job / 3-processor instance:");
    println!(
        "  LS makespan with nominal times : {}",
        demo.nominal_makespan
    );
    println!("{}", demo.nominal_schedule.to_gantt());
    println!(
        "  LS makespan, every time − 1   : {}  <- LONGER despite less work!",
        demo.reduced_makespan
    );
    println!("{}", demo.reduced_schedule.to_gantt());
    assert!(demo.is_anomalous());

    // ── Online: the same instance as a sporadic DAG task ───────────────
    // D = 12 is exactly the template makespan: the admission is tight.
    let task = DagTask::new(classic_anomaly_dag(), Duration::new(12), Duration::new(20))?;
    let system: TaskSystem = [task].into_iter().collect();
    let schedule = fedcons(&system, 3, FedConsConfig::default())?;

    let config = SimConfig {
        horizon: Duration::new(10_000),
        arrivals: ArrivalModel::Periodic,
        execution: ExecutionModel::OneTickShorter, // jobs finish EARLY
        seed: 0,
    };

    let template = simulate_federated(
        &system,
        &schedule,
        config,
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    let rerun = simulate_federated(
        &system,
        &schedule,
        config,
        ClusterDispatch::RerunListScheduling,
        PriorityPolicy::ListOrder,
    );

    println!("Runtime, jobs finishing one tick early:");
    println!("  template lookup dispatcher : {template}");
    println!("  re-run LS dispatcher       : {rerun}");
    assert!(template.is_clean());
    assert_eq!(rerun.jobs_on_time, 0);
    println!(
        "\nThe lookup table (paper footnote 2) is not an optimisation — it is\n\
         what makes the admission guarantee survive contact with reality."
    );
    Ok(())
}
