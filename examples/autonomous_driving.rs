//! An autonomous-driving perception stack: where federated scheduling beats
//! DAG-blind global EDF.
//!
//! ```text
//! cargo run --example autonomous_driving
//! ```
//!
//! The perception pipeline (camera decode → 4 parallel detector heads →
//! fusion → tracking → planning hand-off) is a *high-density* task: its
//! work per 33 ms frame exceeds what one core can deliver before the 28 ms
//! deadline. A scheduler that ignores intra-task parallelism — here, the
//! sequentialising global-EDF density baseline — must reject the system
//! outright; FEDCONS carves out a dedicated cluster and admits it, and the
//! simulator confirms the admitted configuration never misses a frame.

use fedsched::core::baselines::global_edf_density_test;
use fedsched::core::feasibility::necessary_feasible;
use fedsched::core::fedcons::{fedcons, FedConsConfig};
use fedsched::dag::graph::{Dag, DagBuilder};
use fedsched::dag::system::TaskSystem;
use fedsched::dag::task::DagTask;
use fedsched::dag::time::Duration;
use fedsched::graham::list::PriorityPolicy;
use fedsched::sim::federated::{simulate_federated, ClusterDispatch};
use fedsched::sim::model::SimConfig;

/// Perception: decode fans out to four detector heads plus a lane model,
/// results fuse, then tracking. Ticks are 1 ms.
fn perception_dag() -> Result<Dag, Box<dyn std::error::Error>> {
    let mut b = DagBuilder::new();
    let decode = b.add_vertex(Duration::new(3));
    let fuse = b.add_vertex(Duration::new(4));
    for wcet in [9u64, 9, 8, 8] {
        let head = b.add_vertex(Duration::new(wcet));
        b.add_edge(decode, head)?;
        b.add_edge(head, fuse)?;
    }
    let lanes = b.add_vertex(Duration::new(6));
    b.add_edge(decode, lanes)?;
    b.add_edge(lanes, fuse)?;
    let tracking = b.add_vertex(Duration::new(5));
    b.add_edge(fuse, tracking)?;
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let perception = DagTask::new(perception_dag()?, Duration::new(28), Duration::new(33))?;
    println!(
        "Perception: vol={} len={} D={} T={} δ={}",
        perception.volume(),
        perception.longest_chain_length(),
        perception.deadline(),
        perception.period(),
        perception.density(),
    );
    assert!(perception.is_high_density(), "the pipeline needs > 1 core");

    // Supporting tasks: localisation, CAN gateway, behaviour planner.
    let localisation = DagTask::sequential(Duration::new(8), Duration::new(40), Duration::new(50))?;
    let can_gateway = DagTask::sequential(Duration::new(2), Duration::new(8), Duration::new(10))?;
    let planner = DagTask::sequential(Duration::new(20), Duration::new(90), Duration::new(100))?;

    let system: TaskSystem = [perception, localisation, can_gateway, planner]
        .into_iter()
        .collect();
    let m = 4;

    // Sanity: the system is not trivially infeasible.
    assert!(necessary_feasible(&system, m));

    // The DAG-blind baseline: sequentialise every task and apply the global
    // EDF density test. The perception task alone sinks it (δ > 1 means the
    // whole frame's work cannot run sequentially inside the deadline).
    let baseline = global_edf_density_test(&system, m);
    println!("\nDAG-blind global-EDF density test on {m} cores: {baseline}");
    assert!(
        !baseline,
        "sequentialising schedulers must reject this system"
    );

    // FEDCONS: a dedicated cluster for perception, EDF for the rest.
    let schedule = fedcons(&system, m, FedConsConfig::default())?;
    println!("\nFEDCONS admits it:\n{schedule}");
    let cluster = &schedule.clusters()[0];
    println!(
        "Perception cluster template ({} cores, makespan {} ≤ D {}):\n{}",
        cluster.processors,
        cluster.template.makespan(),
        Duration::new(28),
        cluster.template.to_gantt()
    );

    // Drive for an hour of frames.
    let report = simulate_federated(
        &system,
        &schedule,
        SimConfig::worst_case(Duration::new(3_600_000)),
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    println!("1-hour drive: {report}");
    assert!(report.is_clean());
    println!("Every frame met its deadline — federated scheduling exploits the parallelism the baseline cannot.");
    Ok(())
}
