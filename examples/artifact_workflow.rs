//! The offline/online split, end to end: analyse on a workstation, ship the
//! admission artifact, dispatch from it on the target.
//!
//! ```text
//! cargo run --example artifact_workflow
//! ```
//!
//! FEDCONS's output is not just a yes — it is a complete run-time
//! configuration (cluster assignments + frozen templates + EDF partition).
//! This example serialises that artifact to JSON, "ships" it (re-reads it
//! from disk), independently re-validates every template against the task
//! system, and then runs the simulator from the *deserialised* artifact,
//! exactly as an embedded target would.

use fedsched::core::fedcons::{fedcons, FedConsConfig, FederatedSchedule};
use fedsched::dag::system::TaskSystem;
use fedsched::dag::time::Duration;
use fedsched::gen::system::SystemConfig;
use fedsched::gen::DeadlineTightness;
use fedsched::graham::list::PriorityPolicy;
use fedsched::sim::federated::{simulate_federated, ClusterDispatch};
use fedsched::sim::model::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("fedsched_artifact_demo");
    std::fs::create_dir_all(&dir)?;

    // ── Offline: generate, admit, persist both artifacts ────────────────
    let system = SystemConfig::new(6, 3.0)
        .with_max_task_utilization(1.5)
        .with_tightness(DeadlineTightness::new(0.3, 1.0))
        .generate_seeded(99)
        .expect("feasible target");
    let schedule = fedcons(&system, 6, FedConsConfig::default())?;

    let system_path = dir.join("system.json");
    let schedule_path = dir.join("schedule.json");
    std::fs::write(&system_path, serde_json::to_string_pretty(&system)?)?;
    std::fs::write(&schedule_path, serde_json::to_string_pretty(&schedule)?)?;
    println!(
        "offline: admitted on 6 processors, artifacts written to {}",
        dir.display()
    );

    // ── "Ship" ──────────────────────────────────────────────────────────
    let system: TaskSystem = serde_json::from_str(&std::fs::read_to_string(&system_path)?)?;
    let shipped: FederatedSchedule =
        serde_json::from_str(&std::fs::read_to_string(&schedule_path)?)?;
    assert_eq!(shipped, schedule, "lossless round-trip");

    // ── Online: independent validation before enabling dispatch ─────────
    for cluster in shipped.clusters() {
        let task = system.task(cluster.task);
        cluster
            .template
            .validate(task.dag())
            .expect("shipped template is a valid schedule of the shipped DAG");
        assert!(cluster.template.makespan() <= task.deadline());
        println!(
            "online: template for {} validated ({} processors, makespan {})",
            cluster.task,
            cluster.processors,
            cluster.template.makespan()
        );
    }

    // ── Online: dispatch from the deserialised artifact ─────────────────
    let report = simulate_federated(
        &system,
        &shipped,
        SimConfig::worst_case(Duration::new(200_000)),
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    println!("online: {report}");
    assert!(report.is_clean());
    println!("dispatching from the shipped artifact: all deadlines met.");

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
