//! An avionics-style workload: flight control, sensor fusion and telemetry
//! on an 8-core flight computer.
//!
//! ```text
//! cargo run --example avionics_pipeline
//! ```
//!
//! Models the kind of multi-rate DAG workload the paper's introduction
//! motivates (ticks = 100 µs):
//!
//! * **Sensor fusion** (high-density): IMU/GPS/baro/magnetometer
//!   preprocessing fan-out into an EKF update that must finish well inside
//!   its 2 ms window — internal parallelism is mandatory.
//! * **Flight control law** (constrained): gain scheduling fork-join at
//!   10 ms with a 4 ms deadline.
//! * **Telemetry, logging, health monitoring** (light sequential tasks).
//!
//! The example admits the system with FEDCONS, shows which tasks received
//! dedicated clusters vs EDF slots, verifies the shared-pool partition with
//! the *exact* EDF test, and stress-runs the runtime for a million ticks.

use fedsched::analysis::dbf::SequentialView;
use fedsched::analysis::edf::{edf_qpa, DEFAULT_BUDGET};
use fedsched::core::fedcons::{fedcons, FedConsConfig};
use fedsched::dag::graph::{Dag, DagBuilder};
use fedsched::dag::system::TaskSystem;
use fedsched::dag::task::DagTask;
use fedsched::dag::time::Duration;
use fedsched::graham::list::PriorityPolicy;
use fedsched::sim::federated::{simulate_federated, ClusterDispatch};
use fedsched::sim::model::{ArrivalModel, ExecutionModel, SimConfig};

/// Sensor fusion: four preprocessing chains fanning into an EKF stage that
/// splits into predict/update and joins at a state publisher.
fn sensor_fusion_dag() -> Result<Dag, Box<dyn std::error::Error>> {
    let mut b = DagBuilder::new();
    let imu = b.add_vertex(Duration::new(4));
    let gps = b.add_vertex(Duration::new(6));
    let baro = b.add_vertex(Duration::new(3));
    let mag = b.add_vertex(Duration::new(3));
    let gate = b.add_vertex(Duration::new(2)); // measurement alignment
    for s in [imu, gps, baro, mag] {
        b.add_edge(s, gate)?;
    }
    let predict = b.add_vertex(Duration::new(5));
    let update = b.add_vertex(Duration::new(7));
    b.add_edge(gate, predict)?;
    b.add_edge(gate, update)?;
    let publish = b.add_vertex(Duration::new(2));
    b.add_edge(predict, publish)?;
    b.add_edge(update, publish)?;
    Ok(b.build()?)
}

/// Control law: mode selector forking into three axis controllers, joined
/// by an actuator mixer.
fn control_law_dag() -> Result<Dag, Box<dyn std::error::Error>> {
    let mut b = DagBuilder::new();
    let mode = b.add_vertex(Duration::new(3));
    let mixer = b.add_vertex(Duration::new(4));
    for wcet in [8u64, 8, 9] {
        let axis = b.add_vertex(Duration::new(wcet));
        b.add_edge(mode, axis)?;
        b.add_edge(axis, mixer)?;
    }
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ticks are 100 µs: a 2 ms deadline is 20 ticks.
    let fusion = DagTask::new(sensor_fusion_dag()?, Duration::new(20), Duration::new(20))?;
    let control = DagTask::new(control_law_dag()?, Duration::new(40), Duration::new(100))?;
    let telemetry = DagTask::sequential(Duration::new(30), Duration::new(150), Duration::new(200))?;
    let logging = DagTask::sequential(Duration::new(40), Duration::new(400), Duration::new(500))?;
    let health = DagTask::sequential(Duration::new(25), Duration::new(250), Duration::new(250))?;

    let system: TaskSystem = [fusion, control, telemetry, logging, health]
        .into_iter()
        .collect();

    println!("Avionics task system:");
    for (id, t) in system.iter() {
        println!(
            "  {id}: vol={} len={} D={} T={} δ={} ({})",
            t.volume(),
            t.longest_chain_length(),
            t.deadline(),
            t.period(),
            t.density(),
            if t.is_high_density() {
                "HIGH density — needs a cluster"
            } else {
                "low density"
            },
        );
    }
    println!("  U_sum = {}\n", system.total_utilization());

    let schedule = fedcons(&system, 8, FedConsConfig::default())?;
    println!("{schedule}");

    // Independent verification: every shared processor passes the *exact*
    // EDF processor-demand test, not just the DBF* approximation.
    for (slot, ids) in schedule.partition().iter() {
        if ids.is_empty() {
            continue;
        }
        let views: Vec<SequentialView> = ids
            .iter()
            .map(|&id| SequentialView::of(system.task(id)))
            .collect();
        let verdict = edf_qpa(&views, DEFAULT_BUDGET)?;
        println!(
            "exact EDF check, shared P{}: {:?}",
            schedule.shared_first() + slot as u32,
            verdict
        );
        assert!(verdict.is_schedulable());
    }

    // A million ticks (100 s of flight) with jittery arrivals and variable
    // execution times.
    let report = simulate_federated(
        &system,
        &schedule,
        SimConfig {
            horizon: Duration::new(1_000_000),
            arrivals: ArrivalModel::SporadicUniformSlack {
                max_extra_fraction: 0.2,
            },
            execution: ExecutionModel::UniformFraction { min_fraction: 0.4 },
            seed: 2024,
        },
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    println!("\n100 s stress run: {report}");
    assert!(report.is_clean());
    println!("Flight computer holds all deadlines.");
    Ok(())
}
