//! Quickstart: the paper's Figure 1 task, from model to running system.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the full pipeline: inspect the example task's derived quantities
//! (Example 1 of the paper), build a small mixed system around it, admit it
//! with FEDCONS on four processors, print the resulting configuration and a
//! Gantt chart of the dedicated cluster's template, and finally replay the
//! system in the discrete-event simulator.

use fedsched::core::fedcons::{fedcons, FedConsConfig};
use fedsched::dag::examples::paper_figure1;
use fedsched::dag::graph::DagBuilder;
use fedsched::dag::system::TaskSystem;
use fedsched::dag::task::DagTask;
use fedsched::dag::time::Duration;
use fedsched::graham::list::PriorityPolicy;
use fedsched::sim::federated::{simulate_federated, ClusterDispatch};
use fedsched::sim::model::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. The paper's Figure 1 task ────────────────────────────────────
    let tau1 = paper_figure1();
    println!("Paper Figure 1 task: {tau1}");
    println!("  len  = {}", tau1.longest_chain_length());
    println!("  vol  = {}", tau1.volume());
    println!("  u    = {}", tau1.utilization());
    println!(
        "  δ    = {} (low-density: {})",
        tau1.density(),
        tau1.is_low_density()
    );
    println!("\nDOT rendering of its DAG:\n{}", tau1.dag().to_dot("tau1"));

    // ── 2. A mixed system: τ1 plus a high-density vision task ───────────
    // Eight parallel 1-tick jobs due within 3 ticks: δ = 8/3 > 1, so the
    // task needs a dedicated cluster.
    let mut b = DagBuilder::new();
    b.add_vertices([1u64; 8].map(Duration::new));
    let wide = DagTask::new(b.build()?, Duration::new(3), Duration::new(10))?;
    let light = DagTask::sequential(Duration::new(2), Duration::new(9), Duration::new(18))?;

    let system: TaskSystem = [tau1, wide, light].into_iter().collect();
    println!("{system}");

    // ── 3. Admission: FEDCONS on 4 processors ───────────────────────────
    let schedule = fedcons(&system, 4, FedConsConfig::default())?;
    println!("{schedule}");
    for cluster in schedule.clusters() {
        println!(
            "Template Gantt for {} (makespan {}):\n{}",
            cluster.task,
            cluster.template.makespan(),
            cluster.template.to_gantt()
        );
    }

    // ── 4. Runtime: replay for 100k ticks under worst-case conditions ───
    let report = simulate_federated(
        &system,
        &schedule,
        SimConfig::worst_case(Duration::new(100_000)),
        ClusterDispatch::Template,
        PriorityPolicy::ListOrder,
    );
    println!("Simulation: {report}");
    assert!(report.is_clean(), "an admitted system never misses");
    println!("All deadlines met — exactly as the analysis promised.");
    Ok(())
}
